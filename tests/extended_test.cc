#include <cmath>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/split.h"
#include "grad_check.h"
#include "nn/gru.h"
#include "seqrec/classic_baselines.h"
#include "seqrec/extended_baselines.h"

namespace whitenrec {
namespace {

using linalg::Matrix;
using linalg::Rng;
using ::whitenrec::testing::MaxInputGradError;
using ::whitenrec::testing::MaxParamGradError;
using ::whitenrec::testing::WeightedSum;

// ---------------------------------------------------------------------------
// GRU layer
// ---------------------------------------------------------------------------

TEST(GruTest, ForwardShapeAndFiniteness) {
  Rng rng(1);
  nn::Gru gru(6, &rng);
  const Matrix x = rng.GaussianMatrix(8, 6, 1.0);  // batch=2, L=4
  const Matrix h = gru.Forward(x, 2, 4);
  EXPECT_EQ(h.rows(), 8u);
  EXPECT_EQ(h.cols(), 6u);
  for (std::size_t i = 0; i < h.size(); ++i)
    EXPECT_TRUE(std::isfinite(h.data()[i]));
  // GRU hidden state is a convex-ish combination bounded by tanh range.
  EXPECT_LT(h.MaxAbs(), 1.5);
}

TEST(GruTest, HiddenStateCarriesHistory) {
  // Same last input but different first input must give different final
  // hidden states (recurrence is live).
  Rng rng(2);
  nn::Gru gru(4, &rng);
  Matrix x1 = rng.GaussianMatrix(3, 4, 1.0);  // batch=1, L=3
  Matrix x2 = x1;
  x2(0, 0) += 2.0;
  const Matrix h1 = gru.Forward(x1, 1, 3);
  const std::vector<double> last1 = h1.Row(2);
  const Matrix h2 = gru.Forward(x2, 1, 3);
  const std::vector<double> last2 = h2.Row(2);
  double diff = 0.0;
  for (std::size_t c = 0; c < 4; ++c) diff += std::fabs(last1[c] - last2[c]);
  EXPECT_GT(diff, 1e-6);
}

TEST(GruTest, CausalityWithinSequence) {
  // Changing a later input must not affect earlier hidden states.
  Rng rng(3);
  nn::Gru gru(4, &rng);
  Matrix x = rng.GaussianMatrix(4, 4, 1.0);
  const Matrix h1 = gru.Forward(x, 1, 4);
  x(3, 1) += 5.0;
  const Matrix h2 = gru.Forward(x, 1, 4);
  for (std::size_t t = 0; t < 3; ++t)
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_DOUBLE_EQ(h1(t, c), h2(t, c));
}

TEST(GruTest, SequencesIndependentAcrossBatch) {
  Rng rng(4);
  nn::Gru gru(4, &rng);
  Matrix x = rng.GaussianMatrix(6, 4, 1.0);  // batch=2, L=3
  const Matrix h1 = gru.Forward(x, 2, 3);
  x(0, 0) += 3.0;  // perturb sequence 0 only
  const Matrix h2 = gru.Forward(x, 2, 3);
  for (std::size_t t = 3; t < 6; ++t)  // sequence 1 rows unchanged
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_DOUBLE_EQ(h1(t, c), h2(t, c));
}

TEST(GruTest, GradCheckInput) {
  Rng rng(5);
  nn::Gru gru(3, &rng);
  Matrix x = rng.GaussianMatrix(6, 3, 0.8);  // batch=2, L=3
  const Matrix w = rng.GaussianMatrix(6, 3, 1.0);
  gru.Forward(x, 2, 3);
  std::vector<nn::Parameter*> params;
  gru.CollectParameters(&params);
  for (nn::Parameter* p : params) p->ZeroGrad();
  const Matrix dx = gru.Backward(w);
  auto loss = [&]() { return WeightedSum(gru.Forward(x, 2, 3), w); };
  EXPECT_LT(MaxInputGradError(&x, dx, loss), 1e-4);
}

TEST(GruTest, GradCheckParameters) {
  Rng rng(6);
  nn::Gru gru(3, &rng);
  Matrix x = rng.GaussianMatrix(4, 3, 0.8);  // batch=1, L=4 (deep BPTT)
  const Matrix w = rng.GaussianMatrix(4, 3, 1.0);
  gru.Forward(x, 1, 4);
  std::vector<nn::Parameter*> params;
  gru.CollectParameters(&params);
  for (nn::Parameter* p : params) p->ZeroGrad();
  gru.Backward(w);
  auto loss = [&]() { return WeightedSum(gru.Forward(x, 1, 4), w); };
  for (nn::Parameter* p : params)
    EXPECT_LT(MaxParamGradError(p, p->grad, loss), 1e-4) << p->name;
}

// ---------------------------------------------------------------------------
// Bidirectional attention (BERT4Rec mode)
// ---------------------------------------------------------------------------

TEST(BidirectionalAttentionTest, LaterPositionsAffectEarlierOutputs) {
  Rng rng(7);
  nn::MultiHeadSelfAttention attn(8, 2, &rng, "bi", /*causal=*/false);
  Matrix x = rng.GaussianMatrix(5, 8, 1.0);
  const Matrix y1 = attn.Forward(x, 1, 5);
  x(4, 0) += 5.0;
  const Matrix y2 = attn.Forward(x, 1, 5);
  double diff = 0.0;
  for (std::size_t c = 0; c < 8; ++c) diff += std::fabs(y1(0, c) - y2(0, c));
  EXPECT_GT(diff, 1e-9);  // position 0 sees position 4
}

TEST(BidirectionalAttentionTest, GradCheckInput) {
  Rng rng(8);
  nn::MultiHeadSelfAttention attn(4, 2, &rng, "bi", /*causal=*/false);
  Matrix x = rng.GaussianMatrix(6, 4, 0.7);
  const Matrix w = rng.GaussianMatrix(6, 4, 1.0);
  attn.Forward(x, 2, 3);
  std::vector<nn::Parameter*> params;
  attn.CollectParameters(&params);
  for (nn::Parameter* p : params) p->ZeroGrad();
  const Matrix dx = attn.Backward(w);
  auto loss = [&]() { return WeightedSum(attn.Forward(x, 2, 3), w); };
  EXPECT_LT(MaxInputGradError(&x, dx, loss), 1e-4);
}

// ---------------------------------------------------------------------------
// GRU4Rec / BERT4Rec end to end
// ---------------------------------------------------------------------------

const data::GeneratedData& TinyData() {
  static const data::GeneratedData* data = [] {
    data::DatasetProfile p = data::ArtsProfile(0.3);
    p.plm.embed_dim = 16;
    p.plm.calibration_iters = 15;
    return new data::GeneratedData(data::GenerateDataset(p));
  }();
  return *data;
}

seqrec::SasRecConfig TinyConfig() {
  seqrec::SasRecConfig config;
  config.hidden_dim = 16;
  config.num_blocks = 1;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.dropout = 0.1;
  config.max_len = 8;
  return config;
}

TEST(Gru4RecTest, TrainsAndRanks) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = seqrec::MakeGru4Rec(ds, TinyConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig tc;
  tc.epochs = 4;
  const seqrec::TrainResult& result = rec->Fit(split, tc);
  EXPECT_FALSE(result.epochs.empty());
  EXPECT_GT(result.epochs.front().train_loss,
            result.epochs.back().train_loss);
  const seqrec::EvalResult r =
      seqrec::EvaluateRanking(rec.get(), split.test, split.train, 8);
  EXPECT_GE(r.recall20, 0.0);
  EXPECT_LE(r.recall50, 1.0);
  EXPECT_GT(rec->NumParameters(), 0u);
}

TEST(Bert4RecTest, TrainsAndRanks) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = seqrec::MakeBert4Rec(ds, TinyConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig tc;
  tc.epochs = 4;
  const seqrec::TrainResult& result = rec->Fit(split, tc);
  EXPECT_FALSE(result.epochs.empty());
  for (const auto& log : result.epochs)
    EXPECT_TRUE(std::isfinite(log.train_loss));
  const seqrec::EvalResult r =
      seqrec::EvaluateRanking(rec.get(), split.test, split.train, 8);
  EXPECT_GE(r.recall20, 0.0);
}

TEST(Bert4RecTest, ScoreShapeMatchesCatalog) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = seqrec::MakeBert4Rec(ds, TinyConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  const auto batches = data::MakeEvalBatches(split.valid, 8, 16);
  const Matrix scores = rec->ScoreLastPositions(batches[0]);
  EXPECT_EQ(scores.rows(), batches[0].batch_size);
  EXPECT_EQ(scores.cols(), ds.num_items);
}

TEST(Gru4RecTest, BeatsRandomRanking) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = seqrec::MakeGru4Rec(ds, TinyConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig tc;
  tc.epochs = 8;
  rec->Fit(split, tc);
  const seqrec::EvalResult r =
      seqrec::EvaluateRanking(rec.get(), split.test, split.train, 8);
  EXPECT_GT(r.recall20, 20.0 / static_cast<double>(ds.num_items));
}

// ---------------------------------------------------------------------------
// FPMC / Caser
// ---------------------------------------------------------------------------

TEST(FpmcTest, TrainsAndRanks) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = seqrec::MakeFpmc(ds, 16);
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig tc;
  tc.epochs = 5;
  const seqrec::TrainResult& result = rec->Fit(split, tc);
  EXPECT_FALSE(result.epochs.empty());
  EXPECT_GT(result.epochs.front().train_loss,
            result.epochs.back().train_loss);
  const seqrec::EvalResult r =
      seqrec::EvaluateRanking(rec.get(), split.test, split.train, 8);
  EXPECT_GE(r.recall20, 0.0);
  // 4 factor matrices: users + 3x items.
  EXPECT_EQ(rec->NumParameters(),
            16 * (ds.sequences.size() + 3 * ds.num_items));
}

TEST(FpmcTest, BeatsRandomRanking) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = seqrec::MakeFpmc(ds, 16);
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig tc;
  tc.epochs = 10;
  rec->Fit(split, tc);
  const seqrec::EvalResult r =
      seqrec::EvaluateRanking(rec.get(), split.test, split.train, 8);
  EXPECT_GT(r.recall20, 20.0 / static_cast<double>(ds.num_items));
}

TEST(CaserTest, TrainsAndRanks) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = seqrec::MakeCaser(ds, TinyConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig tc;
  tc.epochs = 4;
  const seqrec::TrainResult& result = rec->Fit(split, tc);
  EXPECT_FALSE(result.epochs.empty());
  EXPECT_GT(result.epochs.front().train_loss,
            result.epochs.back().train_loss);
  const seqrec::EvalResult r =
      seqrec::EvaluateRanking(rec.get(), split.test, split.train, 8);
  EXPECT_GE(r.recall20, 0.0);
  EXPECT_GT(rec->NumParameters(), 0u);
}

TEST(CaserTest, ScoreShapeMatchesCatalog) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = seqrec::MakeCaser(ds, TinyConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  const auto batches = data::MakeEvalBatches(split.valid, 8, 16);
  const linalg::Matrix scores = rec->ScoreLastPositions(batches[0]);
  EXPECT_EQ(scores.rows(), batches[0].batch_size);
  EXPECT_EQ(scores.cols(), ds.num_items);
}

}  // namespace
}  // namespace whitenrec
