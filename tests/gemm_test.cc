// Bitwise equivalence of the blocked GEMM kernels (linalg/gemm.cc) against
// the naive reference loops, across shapes that stress every packing edge
// case (empty, single row/column, odd remainders, non-square, larger than
// one cache block) and across thread counts. Both variants promise ONE
// canonical accumulation order per output element — ascending k with a
// single running accumulator — so equality here is exact, not tolerance-
// based. Also checks that the thread-local packing workspace carries no
// state between calls.

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "linalg/rng.h"
#include "linalg/workspace.h"

namespace whitenrec {
namespace linalg {
namespace {

const std::vector<std::size_t> kThreadCounts = {1, 2, 8};

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : saved_(core::NumThreads()) {
    core::SetNumThreads(n);
  }
  ~ScopedThreads() { core::SetNumThreads(saved_); }

 private:
  std::size_t saved_;
};

class ScopedGemmKind {
 public:
  explicit ScopedGemmKind(GemmKind kind) : saved_(CurrentGemmKind()) {
    SetGemmKind(kind);
  }
  ~ScopedGemmKind() { SetGemmKind(saved_); }

 private:
  GemmKind saved_;
};

void ExpectBitwiseEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i])
        << what << " diverges at flat index " << i << " (" << a.data()[i]
        << " vs " << b.data()[i] << ")";
  }
}

// (m, k, n) triples covering the packing edge cases: kMr=4 / kNr=8 register
// tiles, kMc=64 row blocks, kKc=256 k-panels. Shapes straddle each boundary
// and include degenerate and strongly rectangular cases.
struct Shape {
  std::size_t m, k, n;
};

const Shape kShapes[] = {
    {0, 0, 0},    {0, 5, 7},    {3, 4, 0},    {1, 1, 1},   {1, 17, 9},
    {5, 1, 8},    {4, 8, 8},    {7, 13, 11},  {31, 29, 37}, {64, 256, 8},
    {65, 257, 9}, {12, 300, 5}, {130, 40, 70}, {96, 512, 96},
};

// Fresh deterministic operands for a shape; `salt` decorrelates A from B.
Matrix Operand(std::size_t rows, std::size_t cols, std::uint64_t salt) {
  Rng rng(0x9e3779b9u + salt);
  return rng.GaussianMatrix(rows, cols, 1.0);
}

enum class Op { kMatMul, kTransA, kTransB };

void RunInto(Op op, const Matrix& a, const Matrix& b, Matrix* c) {
  switch (op) {
    case Op::kMatMul:
      MatMulInto(a, b, c);
      break;
    case Op::kTransA:
      MatMulTransAInto(a, b, c);
      break;
    case Op::kTransB:
      MatMulTransBInto(a, b, c);
      break;
  }
}

void RunAcc(Op op, const Matrix& a, const Matrix& b, Matrix* c) {
  switch (op) {
    case Op::kMatMul:
      MatMulAcc(a, b, c);
      break;
    case Op::kTransA:
      MatMulTransAAcc(a, b, c);
      break;
    case Op::kTransB:
      MatMulTransBAcc(a, b, c);
      break;
  }
}

// Builds (A, B) with the right orientation for `op` given logical (m, k, n).
void MakeOperands(Op op, const Shape& s, Matrix* a, Matrix* b) {
  switch (op) {
    case Op::kMatMul:  // (m,k) x (k,n)
      *a = Operand(s.m, s.k, 1);
      *b = Operand(s.k, s.n, 2);
      break;
    case Op::kTransA:  // (k,m)^T x (k,n)
      *a = Operand(s.k, s.m, 1);
      *b = Operand(s.k, s.n, 2);
      break;
    case Op::kTransB:  // (m,k) x (n,k)^T
      *a = Operand(s.m, s.k, 1);
      *b = Operand(s.n, s.k, 2);
      break;
  }
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kMatMul:
      return "MatMul";
    case Op::kTransA:
      return "MatMulTransA";
    case Op::kTransB:
      return "MatMulTransB";
  }
  return "?";
}

TEST(GemmEquivalenceTest, BlockedMatchesNaiveBitwiseAcrossShapesAndThreads) {
  for (Op op : {Op::kMatMul, Op::kTransA, Op::kTransB}) {
    for (const Shape& s : kShapes) {
      Matrix a, b;
      MakeOperands(op, s, &a, &b);

      Matrix ref;
      {
        ScopedGemmKind naive(GemmKind::kNaive);
        ScopedThreads one(1);
        RunInto(op, a, b, &ref);
      }
      for (std::size_t threads : kThreadCounts) {
        for (GemmKind kind : {GemmKind::kNaive, GemmKind::kBlocked}) {
          ScopedGemmKind k(kind);
          ScopedThreads t(threads);
          Matrix c;
          RunInto(op, a, b, &c);
          SCOPED_TRACE(::testing::Message()
                       << OpName(op) << " m=" << s.m << " k=" << s.k
                       << " n=" << s.n << " kind=" << GemmKindName(kind)
                       << " threads=" << threads);
          ExpectBitwiseEqual(ref, c, OpName(op));
        }
      }
    }
  }
}

TEST(GemmEquivalenceTest, AccVariantsMatchNaiveBitwise) {
  for (Op op : {Op::kMatMul, Op::kTransA, Op::kTransB}) {
    for (const Shape& s : kShapes) {
      Matrix a, b;
      MakeOperands(op, s, &a, &b);
      // Accumulate on top of a non-trivial C so the "+=" path is real.
      const Matrix c0 = Operand(s.m, s.n, 3);

      Matrix ref = c0;
      {
        ScopedGemmKind naive(GemmKind::kNaive);
        ScopedThreads one(1);
        RunAcc(op, a, b, &ref);
      }
      for (std::size_t threads : kThreadCounts) {
        ScopedGemmKind blocked(GemmKind::kBlocked);
        ScopedThreads t(threads);
        Matrix c = c0;
        RunAcc(op, a, b, &c);
        SCOPED_TRACE(::testing::Message()
                     << OpName(op) << "Acc m=" << s.m << " k=" << s.k
                     << " n=" << s.n << " threads=" << threads);
        ExpectBitwiseEqual(ref, c, OpName(op));
      }
    }
  }
}

TEST(GemmEquivalenceTest, MatVecMatchesMatMulColumn) {
  Rng rng(11);
  const Matrix a = rng.GaussianMatrix(37, 53, 1.0);
  std::vector<double> x(53);
  for (double& v : x) v = rng.Gaussian();
  Matrix xcol(53, 1);
  for (std::size_t i = 0; i < x.size(); ++i) xcol(i, 0) = x[i];

  const Matrix ref = MatMul(a, xcol);
  for (std::size_t threads : kThreadCounts) {
    ScopedThreads t(threads);
    std::vector<double> y;
    MatVecInto(a, x, &y);
    ASSERT_EQ(y.size(), ref.rows());
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y[i], ref(i, 0)) << "MatVec row " << i << " at " << threads
                                 << " threads";
    }
  }
}

TEST(GemmEquivalenceTest, EnvKindNamesRoundTrip) {
  EXPECT_STREQ(GemmKindName(GemmKind::kNaive), "naive");
  EXPECT_STREQ(GemmKindName(GemmKind::kBlocked), "blocked");
}

// The packing workspace is thread-local scratch: a big product followed by a
// small one, then the small one again from scratch, must agree bitwise. If
// stale packed panels leaked between calls, the second small product would
// read residue from the large one.
TEST(GemmWorkspaceTest, NoContaminationAcrossCalls) {
  ScopedGemmKind blocked(GemmKind::kBlocked);
  const Matrix big_a = Operand(96, 512, 7);
  const Matrix big_b = Operand(512, 96, 8);
  const Matrix small_a = Operand(5, 9, 9);
  const Matrix small_b = Operand(9, 6, 10);

  Matrix fresh;
  MatMulInto(small_a, small_b, &fresh);  // before any big call this test makes

  Matrix big;
  MatMulInto(big_a, big_b, &big);
  Matrix after;
  MatMulInto(small_a, small_b, &after);
  ExpectBitwiseEqual(fresh, after, "small product after large product");

  // Same property for the destination-reusing path: shrinking a workspace
  // matrix must zero-fill, not expose old values.
  Workspace ws;
  Matrix& m = ws.Mat(0, 64, 64);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = 123.0;
  Matrix& shrunk = ws.Mat(0, 3, 3);
  for (std::size_t i = 0; i < shrunk.size(); ++i) {
    ASSERT_EQ(shrunk.data()[i], 0.0) << "stale workspace value at " << i;
  }
  ASSERT_EQ(&m, &shrunk);  // same slot object, capacity reused
}

// Buf() slots grow monotonically and keep their identity.
TEST(GemmWorkspaceTest, BufGrowsMonotonically) {
  Workspace ws;
  std::vector<double>& b1 = ws.Buf(0, 100);
  EXPECT_GE(b1.size(), 100u);
  std::vector<double>& b2 = ws.Buf(0, 10);
  EXPECT_EQ(&b1, &b2);
  EXPECT_GE(b2.size(), 100u) << "Buf must never shrink";
  std::vector<double>& b3 = ws.Buf(1, 50);
  EXPECT_NE(&b1, &b3) << "distinct slots must be distinct buffers";
}

}  // namespace
}  // namespace linalg
}  // namespace whitenrec
