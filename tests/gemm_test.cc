// Bitwise equivalence of the blocked GEMM kernels (linalg/gemm.cc) against
// the naive reference loops, across shapes that stress every packing edge
// case (empty, single row/column, odd remainders, non-square, larger than
// one cache block) and across thread counts. Both variants promise ONE
// canonical accumulation order per output element — ascending k with a
// single running accumulator — so equality here is exact, not tolerance-
// based. Also checks that the thread-local packing workspace carries no
// state between calls.

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "linalg/rng.h"
#include "linalg/workspace.h"

namespace whitenrec {
namespace linalg {
namespace {

const std::vector<std::size_t> kThreadCounts = {1, 2, 8};

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : saved_(core::NumThreads()) {
    core::SetNumThreads(n);
  }
  ~ScopedThreads() { core::SetNumThreads(saved_); }

 private:
  std::size_t saved_;
};

class ScopedGemmKind {
 public:
  explicit ScopedGemmKind(GemmKind kind) : saved_(CurrentGemmKind()) {
    SetGemmKind(kind);
  }
  ~ScopedGemmKind() { SetGemmKind(saved_); }

 private:
  GemmKind saved_;
};

void ExpectBitwiseEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i])
        << what << " diverges at flat index " << i << " (" << a.data()[i]
        << " vs " << b.data()[i] << ")";
  }
}

// (m, k, n) triples covering the packing edge cases: kMr=4 / kNr=8 register
// tiles, kMc=64 row blocks, kKc=256 k-panels. Shapes straddle each boundary
// and include degenerate and strongly rectangular cases.
struct Shape {
  std::size_t m, k, n;
};

const Shape kShapes[] = {
    {0, 0, 0},    {0, 5, 7},    {3, 4, 0},    {1, 1, 1},   {1, 17, 9},
    {5, 1, 8},    {4, 8, 8},    {7, 13, 11},  {31, 29, 37}, {64, 256, 8},
    {65, 257, 9}, {12, 300, 5}, {130, 40, 70}, {96, 512, 96},
};

// Fresh deterministic operands for a shape; `salt` decorrelates A from B.
Matrix Operand(std::size_t rows, std::size_t cols, std::uint64_t salt) {
  Rng rng(0x9e3779b9u + salt);
  return rng.GaussianMatrix(rows, cols, 1.0);
}

enum class Op { kMatMul, kTransA, kTransB };

void RunInto(Op op, const Matrix& a, const Matrix& b, Matrix* c) {
  switch (op) {
    case Op::kMatMul:
      MatMulInto(a, b, c);
      break;
    case Op::kTransA:
      MatMulTransAInto(a, b, c);
      break;
    case Op::kTransB:
      MatMulTransBInto(a, b, c);
      break;
  }
}

void RunAcc(Op op, const Matrix& a, const Matrix& b, Matrix* c) {
  switch (op) {
    case Op::kMatMul:
      MatMulAcc(a, b, c);
      break;
    case Op::kTransA:
      MatMulTransAAcc(a, b, c);
      break;
    case Op::kTransB:
      MatMulTransBAcc(a, b, c);
      break;
  }
}

// Builds (A, B) with the right orientation for `op` given logical (m, k, n).
void MakeOperands(Op op, const Shape& s, Matrix* a, Matrix* b) {
  switch (op) {
    case Op::kMatMul:  // (m,k) x (k,n)
      *a = Operand(s.m, s.k, 1);
      *b = Operand(s.k, s.n, 2);
      break;
    case Op::kTransA:  // (k,m)^T x (k,n)
      *a = Operand(s.k, s.m, 1);
      *b = Operand(s.k, s.n, 2);
      break;
    case Op::kTransB:  // (m,k) x (n,k)^T
      *a = Operand(s.m, s.k, 1);
      *b = Operand(s.n, s.k, 2);
      break;
  }
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kMatMul:
      return "MatMul";
    case Op::kTransA:
      return "MatMulTransA";
    case Op::kTransB:
      return "MatMulTransB";
  }
  return "?";
}

TEST(GemmEquivalenceTest, BlockedMatchesNaiveBitwiseAcrossShapesAndThreads) {
  for (Op op : {Op::kMatMul, Op::kTransA, Op::kTransB}) {
    for (const Shape& s : kShapes) {
      Matrix a, b;
      MakeOperands(op, s, &a, &b);

      Matrix ref;
      {
        ScopedGemmKind naive(GemmKind::kNaive);
        ScopedThreads one(1);
        RunInto(op, a, b, &ref);
      }
      for (std::size_t threads : kThreadCounts) {
        for (GemmKind kind : {GemmKind::kNaive, GemmKind::kBlocked}) {
          ScopedGemmKind k(kind);
          ScopedThreads t(threads);
          Matrix c;
          RunInto(op, a, b, &c);
          SCOPED_TRACE(::testing::Message()
                       << OpName(op) << " m=" << s.m << " k=" << s.k
                       << " n=" << s.n << " kind=" << GemmKindName(kind)
                       << " threads=" << threads);
          ExpectBitwiseEqual(ref, c, OpName(op));
        }
      }
    }
  }
}

TEST(GemmEquivalenceTest, AccVariantsMatchNaiveBitwise) {
  for (Op op : {Op::kMatMul, Op::kTransA, Op::kTransB}) {
    for (const Shape& s : kShapes) {
      Matrix a, b;
      MakeOperands(op, s, &a, &b);
      // Accumulate on top of a non-trivial C so the "+=" path is real.
      const Matrix c0 = Operand(s.m, s.n, 3);

      Matrix ref = c0;
      {
        ScopedGemmKind naive(GemmKind::kNaive);
        ScopedThreads one(1);
        RunAcc(op, a, b, &ref);
      }
      for (std::size_t threads : kThreadCounts) {
        ScopedGemmKind blocked(GemmKind::kBlocked);
        ScopedThreads t(threads);
        Matrix c = c0;
        RunAcc(op, a, b, &c);
        SCOPED_TRACE(::testing::Message()
                     << OpName(op) << "Acc m=" << s.m << " k=" << s.k
                     << " n=" << s.n << " threads=" << threads);
        ExpectBitwiseEqual(ref, c, OpName(op));
      }
    }
  }
}

TEST(GemmEquivalenceTest, MatVecMatchesMatMulColumn) {
  Rng rng(11);
  const Matrix a = rng.GaussianMatrix(37, 53, 1.0);
  std::vector<double> x(53);
  for (double& v : x) v = rng.Gaussian();
  Matrix xcol(53, 1);
  for (std::size_t i = 0; i < x.size(); ++i) xcol(i, 0) = x[i];

  const Matrix ref = MatMul(a, xcol);
  for (std::size_t threads : kThreadCounts) {
    ScopedThreads t(threads);
    std::vector<double> y;
    MatVecInto(a, x, &y);
    ASSERT_EQ(y.size(), ref.rows());
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y[i], ref(i, 0)) << "MatVec row " << i << " at " << threads
                                 << " threads";
    }
  }
}

TEST(GemmEquivalenceTest, EnvKindNamesRoundTrip) {
  EXPECT_STREQ(GemmKindName(GemmKind::kNaive), "naive");
  EXPECT_STREQ(GemmKindName(GemmKind::kBlocked), "blocked");
}

// The packing workspace is thread-local scratch: a big product followed by a
// small one, then the small one again from scratch, must agree bitwise. If
// stale packed panels leaked between calls, the second small product would
// read residue from the large one.
TEST(GemmWorkspaceTest, NoContaminationAcrossCalls) {
  ScopedGemmKind blocked(GemmKind::kBlocked);
  const Matrix big_a = Operand(96, 512, 7);
  const Matrix big_b = Operand(512, 96, 8);
  const Matrix small_a = Operand(5, 9, 9);
  const Matrix small_b = Operand(9, 6, 10);

  Matrix fresh;
  MatMulInto(small_a, small_b, &fresh);  // before any big call this test makes

  Matrix big;
  MatMulInto(big_a, big_b, &big);
  Matrix after;
  MatMulInto(small_a, small_b, &after);
  ExpectBitwiseEqual(fresh, after, "small product after large product");

  // Same property for the destination-reusing path: shrinking a workspace
  // matrix must zero-fill, not expose old values.
  Workspace ws;
  Matrix& m = ws.Mat(0, 64, 64);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = 123.0;
  Matrix& shrunk = ws.Mat(0, 3, 3);
  for (std::size_t i = 0; i < shrunk.size(); ++i) {
    ASSERT_EQ(shrunk.data()[i], 0.0) << "stale workspace value at " << i;
  }
  ASSERT_EQ(&m, &shrunk);  // same slot object, capacity reused
}

// ---------------------------------------------------------------------------
// Streaming score panels (the fused-scoring tile layer)
// ---------------------------------------------------------------------------

// The streaming layer promises each panel element is the SAME accumulation
// chain as the corresponding full-GEMM element, so reassembling the panels
// must reproduce MatMulTransB bitwise — for any tile width, thread count,
// and kernel variant — and every (row, tile) cell must be delivered exactly
// once.
TEST(StreamingGemmTest, ReassembledPanelsMatchMatMulTransBBitwise) {
  const Shape stream_shapes[] = {
      {1, 1, 1}, {5, 17, 9}, {31, 29, 37}, {64, 256, 8}, {96, 512, 96}};
  for (const Shape& s : stream_shapes) {
    const Matrix a = Operand(s.m, s.k, 1);
    const Matrix b = Operand(s.n, s.k, 2);
    Matrix ref;
    {
      ScopedGemmKind naive(GemmKind::kNaive);
      ScopedThreads one(1);
      MatMulTransBInto(a, b, &ref);
    }
    for (std::size_t threads : kThreadCounts) {
      for (GemmKind kind : {GemmKind::kNaive, GemmKind::kBlocked}) {
        for (const std::size_t tile : {1u, 7u, 64u, 1000u}) {
          ScopedGemmKind k(kind);
          ScopedThreads t(threads);
          SCOPED_TRACE(::testing::Message()
                       << "m=" << s.m << " k=" << s.k << " n=" << s.n
                       << " kind=" << GemmKindName(kind)
                       << " threads=" << threads << " tile=" << tile);
          Matrix assembled(s.m, s.n);
          std::vector<int> delivered(s.m * s.n, 0);
          StreamMatMulTransBTiles(
              a, b, tile,
              [&](std::size_t i0, std::size_t i1, std::size_t j0,
                  std::size_t jn, const Matrix& panel) {
                for (std::size_t i = i0; i < i1; ++i) {
                  for (std::size_t c = 0; c < jn; ++c) {
                    assembled(i, j0 + c) = panel(i, c);
                    ++delivered[i * s.n + j0 + c];
                  }
                }
              });
          ExpectBitwiseEqual(ref, assembled, "streamed tiles");
          for (std::size_t i = 0; i < delivered.size(); ++i) {
            ASSERT_EQ(delivered[i], 1) << "cell " << i << " delivered "
                                       << delivered[i] << " times";
          }

          Matrix from_panels(s.m, s.n);
          StreamMatMulTransBPanels(
              a, b, tile,
              [&](std::size_t j0, std::size_t jn, Matrix* panel) {
                for (std::size_t i = 0; i < s.m; ++i) {
                  for (std::size_t c = 0; c < jn; ++c) {
                    from_panels(i, j0 + c) = (*panel)(i, c);
                  }
                }
              });
          ExpectBitwiseEqual(ref, from_panels, "streamed panels");
        }
      }
    }
  }
}

TEST(StreamingGemmTest, RowDotMatchesFullGemmElementBitwise) {
  const Matrix a = Operand(13, 37, 3);
  const Matrix b = Operand(29, 37, 4);
  Matrix ref;
  MatMulTransBInto(a, b, &ref);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      ASSERT_EQ(RowDotTransB(a, i, b, j), ref(i, j))
          << "element (" << i << ", " << j << ")";
    }
  }
}

TEST(StreamingGemmTest, ScoringKnobsRoundTripAndDefaultSafe) {
  const ScoringMode saved_mode = CurrentScoringMode();
  const std::size_t saved_tile = ScoreTileCols();
  SetScoringMode(ScoringMode::kFused);
  EXPECT_EQ(CurrentScoringMode(), ScoringMode::kFused);
  SetScoreTileCols(77);
  EXPECT_EQ(ScoreTileCols(), 77u);
  SetScoringMode(saved_mode);
  SetScoreTileCols(saved_tile);
}

// Buf() slots grow monotonically and keep their identity.
TEST(GemmWorkspaceTest, BufGrowsMonotonically) {
  Workspace ws;
  std::vector<double>& b1 = ws.Buf(0, 100);
  EXPECT_GE(b1.size(), 100u);
  std::vector<double>& b2 = ws.Buf(0, 10);
  EXPECT_EQ(&b1, &b2);
  EXPECT_GE(b2.size(), 100u) << "Buf must never shrink";
  std::vector<double>& b3 = ws.Buf(1, 50);
  EXPECT_NE(&b1, &b3) << "distinct slots must be distinct buffers";
}

}  // namespace
}  // namespace linalg
}  // namespace whitenrec
