#ifndef WHITENREC_TESTS_GRAD_CHECK_H_
#define WHITENREC_TESTS_GRAD_CHECK_H_

#include <cmath>
#include <functional>

#include "linalg/matrix.h"
#include "nn/layers.h"

namespace whitenrec {
namespace testing {

// Utilities for finite-difference gradient verification of nn layers.
//
// The standard recipe: define loss(x) = sum(W .* Forward(x)) for a fixed
// random weighting W; then dLoss/dOutput = W, so Backward(W) must produce
// the analytic input/parameter gradients, which are compared against central
// differences.

// Central-difference derivative of `loss` w.r.t. one scalar location.
inline double NumericalDerivative(const std::function<double()>& loss,
                                  double* location, double eps = 1e-5) {
  const double saved = *location;
  *location = saved + eps;
  const double up = loss();
  *location = saved - eps;
  const double down = loss();
  *location = saved;
  return (up - down) / (2.0 * eps);
}

// Max relative error between analytic and numeric gradients of a parameter.
// `loss` must recompute the full forward pass from current parameter values.
inline double MaxParamGradError(nn::Parameter* param,
                                const linalg::Matrix& analytic_grad,
                                const std::function<double()>& loss,
                                double eps = 1e-5) {
  double worst = 0.0;
  for (std::size_t i = 0; i < param->value.size(); ++i) {
    const double numeric =
        NumericalDerivative(loss, param->value.data() + i, eps);
    const double analytic = analytic_grad.data()[i];
    const double scale =
        std::max({std::fabs(numeric), std::fabs(analytic), 1e-6});
    worst = std::max(worst, std::fabs(numeric - analytic) / scale);
  }
  return worst;
}

// Same for an input activation matrix.
inline double MaxInputGradError(linalg::Matrix* input,
                                const linalg::Matrix& analytic_grad,
                                const std::function<double()>& loss,
                                double eps = 1e-5) {
  double worst = 0.0;
  for (std::size_t i = 0; i < input->size(); ++i) {
    const double numeric =
        NumericalDerivative(loss, input->data() + i, eps);
    const double analytic = analytic_grad.data()[i];
    const double scale =
        std::max({std::fabs(numeric), std::fabs(analytic), 1e-6});
    worst = std::max(worst, std::fabs(numeric - analytic) / scale);
  }
  return worst;
}

// Weighted-sum objective: sum(weights .* output).
inline double WeightedSum(const linalg::Matrix& output,
                          const linalg::Matrix& weights) {
  double s = 0.0;
  for (std::size_t i = 0; i < output.size(); ++i) {
    s += output.data()[i] * weights.data()[i];
  }
  return s;
}

}  // namespace testing
}  // namespace whitenrec

#endif  // WHITENREC_TESTS_GRAD_CHECK_H_
