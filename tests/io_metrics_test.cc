#include <cstdio>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/io.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "seqrec/baselines.h"

namespace whitenrec {
namespace {

using linalg::Matrix;
using linalg::Rng;

// ---------------------------------------------------------------------------
// Dataset TSV IO
// ---------------------------------------------------------------------------

data::Dataset SmallDataset() {
  data::Dataset ds;
  ds.name = "toy";
  ds.num_items = 3;
  ds.num_categories = 2;
  ds.sequences = {{0, 1, 2}, {2, 1}};
  ds.item_category = {0, 1, 1};
  ds.text_embeddings = Matrix::FromRows({{1.5, -2.25}, {0.0, 3.125}, {7, 8}});
  return ds;
}

TEST(DatasetIoTest, RoundTrip) {
  const data::Dataset original = SmallDataset();
  const std::string prefix = ::testing::TempDir() + "/ds_roundtrip";
  ASSERT_TRUE(data::SaveDataset(original, prefix).ok());
  auto loaded = data::LoadDataset(prefix);
  ASSERT_TRUE(loaded.ok());
  const data::Dataset& ds = loaded.value();
  EXPECT_EQ(ds.name, "toy");
  EXPECT_EQ(ds.num_items, 3u);
  EXPECT_EQ(ds.num_categories, 2u);
  EXPECT_EQ(ds.sequences, original.sequences);
  EXPECT_EQ(ds.item_category, original.item_category);
  ASSERT_EQ(ds.text_embeddings.rows(), 3u);
  for (std::size_t i = 0; i < original.text_embeddings.size(); ++i) {
    EXPECT_DOUBLE_EQ(ds.text_embeddings.data()[i],
                     original.text_embeddings.data()[i]);
  }
  for (const char* ext : {".meta", ".sequences", ".items"}) {
    std::remove((prefix + ext).c_str());
  }
}

TEST(DatasetIoTest, GeneratedDatasetRoundTrip) {
  data::DatasetProfile p = data::ArtsProfile(0.25);
  p.plm.embed_dim = 16;
  p.plm.calibration_iters = 10;
  const data::GeneratedData gen = data::GenerateDataset(p);
  const std::string prefix = ::testing::TempDir() + "/ds_generated";
  ASSERT_TRUE(data::SaveDataset(gen.dataset, prefix).ok());
  auto loaded = data::LoadDataset(prefix);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().sequences, gen.dataset.sequences);
  EXPECT_EQ(loaded.value().num_items, gen.dataset.num_items);
  for (const char* ext : {".meta", ".sequences", ".items"}) {
    std::remove((prefix + ext).c_str());
  }
}

TEST(DatasetIoTest, LoadMissingFails) {
  auto loaded = data::LoadDataset("/nonexistent/prefix");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(DatasetIoTest, RejectsOutOfRangeItemId) {
  const data::Dataset ds = SmallDataset();
  const std::string prefix = ::testing::TempDir() + "/ds_badid";
  ASSERT_TRUE(data::SaveDataset(ds, prefix).ok());
  // Corrupt the sequences file with an out-of-range id.
  {
    std::FILE* f = std::fopen((prefix + ".sequences").c_str(), "a");
    std::fputs("99 0\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(data::LoadDataset(prefix).ok());
  for (const char* ext : {".meta", ".sequences", ".items"}) {
    std::remove((prefix + ext).c_str());
  }
}

// Malformed-input matrix: every corruption must surface as a typed error
// naming the file (and usually the line), never as a silently wrong or
// partially populated dataset.

void OverwriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

void AppendToFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  ASSERT_NE(f, nullptr);
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

struct SavedDataset {
  explicit SavedDataset(const std::string& tag)
      : prefix(::testing::TempDir() + "/ds_" + tag) {
    EXPECT_TRUE(data::SaveDataset(SmallDataset(), prefix).ok());
  }
  ~SavedDataset() {
    for (const char* ext : {".meta", ".sequences", ".items"}) {
      std::remove((prefix + ext).c_str());
    }
  }
  std::string prefix;
};

TEST(DatasetIoMalformedTest, NonNumericSequenceTokenFails) {
  SavedDataset ds("badtok");
  // Pre-hardening, `stream >> item` treated "1x" as a clean end of line and
  // the corruption loaded silently. It must be a typed parse error now.
  AppendToFile(ds.prefix + ".sequences", "1x 2\n");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos);
}

TEST(DatasetIoMalformedTest, NegativeSequenceIdFails) {
  SavedDataset ds("negid");
  AppendToFile(ds.prefix + ".sequences", "-1 2\n");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoMalformedTest, EmptyMetaFails) {
  SavedDataset ds("emptymeta");
  OverwriteFile(ds.prefix + ".meta", "");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoMalformedTest, MalformedMetaHeaderFails) {
  SavedDataset ds("badmeta");
  OverwriteFile(ds.prefix + ".meta", "three\t2\t2\ntoy\n");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoMalformedTest, MetaTrailingTokenFails) {
  SavedDataset ds("metatrail");
  OverwriteFile(ds.prefix + ".meta", "3\t2\t2\t9\ntoy\n");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoMalformedTest, ImplausibleMetaCountsFail) {
  SavedDataset ds("hugemeta");
  OverwriteFile(ds.prefix + ".meta", "99999999999\t2\t2\ntoy\n");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoMalformedTest, TruncatedItemEmbeddingRowFails) {
  SavedDataset ds("shortrow");
  OverwriteFile(ds.prefix + ".items",
                "0\t0\t1.5 -2.25\n1\t1\t0.0\n2\t1\t7 8\n");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(DatasetIoMalformedTest, OverlongItemEmbeddingRowFails) {
  SavedDataset ds("longrow");
  OverwriteFile(ds.prefix + ".items",
                "0\t0\t1.5 -2.25\n1\t1\t0.0 3.125 9.0\n2\t1\t7 8\n");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoMalformedTest, NonNumericEmbeddingValueFails) {
  SavedDataset ds("badfloat");
  OverwriteFile(ds.prefix + ".items",
                "0\t0\t1.5 -2.25\n1\t1\tNaNbug 3.125\n2\t1\t7 8\n");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoMalformedTest, DuplicateItemRowFails) {
  SavedDataset ds("dupitem");
  OverwriteFile(ds.prefix + ".items",
                "0\t0\t1.5 -2.25\n0\t1\t0.0 3.125\n2\t1\t7 8\n");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoMalformedTest, MissingItemRowFails) {
  SavedDataset ds("missrow");
  OverwriteFile(ds.prefix + ".items", "0\t0\t1.5 -2.25\n2\t1\t7 8\n");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(DatasetIoMalformedTest, OutOfRangeCategoryFails) {
  SavedDataset ds("badcat");
  OverwriteFile(ds.prefix + ".items",
                "0\t0\t1.5 -2.25\n1\t9\t0.0 3.125\n2\t1\t7 8\n");
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(DatasetIoMalformedTest, MissingItemsFileFails) {
  SavedDataset ds("noitems");
  std::remove((ds.prefix + ".items").c_str());
  auto loaded = data::LoadDataset(ds.prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// MRR and sampled metrics
// ---------------------------------------------------------------------------

TEST(MrrTest, KnownValues) {
  eval::MetricAccumulator acc({20});
  acc.AddRank(0);  // RR 1
  acc.AddRank(1);  // RR 1/2
  acc.AddRank(3);  // RR 1/4
  EXPECT_NEAR(acc.Mrr(), (1.0 + 0.5 + 0.25) / 3.0, 1e-12);
}

TEST(SampledRankTest, PerfectTargetAlwaysRankZero) {
  Rng rng(1);
  std::vector<double> scores(50, 0.0);
  scores[7] = 10.0;
  const std::vector<char> none(50, 0);
  for (int rep = 0; rep < 10; ++rep) {
    EXPECT_EQ(eval::SampledRankOfTarget(scores, 7, none, 20, &rng), 0u);
  }
}

TEST(SampledRankTest, NeverExceedsNumNegatives) {
  Rng rng(2);
  std::vector<double> scores(50);
  for (std::size_t i = 0; i < 50; ++i) scores[i] = static_cast<double>(i);
  const std::vector<char> none(50, 0);
  // Target 0 is the worst item; sampled rank stays <= negatives drawn.
  const std::size_t rank = eval::SampledRankOfTarget(scores, 0, none, 10, &rng);
  EXPECT_LE(rank, 10u);
}

TEST(SampledRankTest, SampledRankUnderestimatesFullRank) {
  // In expectation, sampled rank = full_rank * negatives / (n - 1).
  Rng rng(3);
  std::vector<double> scores(101);
  for (std::size_t i = 0; i < 101; ++i) scores[i] = static_cast<double>(i);
  const std::vector<char> none(101, 0);
  // Target 50 has full rank 50 among 100 others.
  double total = 0.0;
  const int reps = 400;
  for (int rep = 0; rep < reps; ++rep) {
    total += static_cast<double>(
        eval::SampledRankOfTarget(scores, 50, none, 20, &rng));
  }
  EXPECT_NEAR(total / reps, 50.0 * 20.0 / 100.0, 1.0);
}

TEST(SampledRankTest, ExcludedItemsNeverSampled) {
  Rng rng(4);
  std::vector<double> scores = {0.0, 100.0, 100.0, 100.0};
  std::vector<char> excluded = {0, 1, 1, 1};  // everything better is excluded
  EXPECT_EQ(eval::SampledRankOfTarget(scores, 0, excluded, 3, &rng), 0u);
}

// ---------------------------------------------------------------------------
// Stratified and sampled evaluation end to end
// ---------------------------------------------------------------------------

const data::GeneratedData& TinyData() {
  static const data::GeneratedData* data = [] {
    data::DatasetProfile p = data::ArtsProfile(0.3);
    p.plm.embed_dim = 16;
    p.plm.calibration_iters = 15;
    return new data::GeneratedData(data::GenerateDataset(p));
  }();
  return *data;
}

TEST(StratifiedEvalTest, HeadPlusTailCoversAllInstances) {
  const data::Dataset& ds = TinyData().dataset;
  seqrec::SasRecConfig mc;
  mc.hidden_dim = 16;
  mc.num_blocks = 1;
  mc.max_len = 8;
  auto rec = seqrec::MakeSasRecId(ds, mc);
  const data::Split split = data::LeaveOneOutSplit(ds);
  const seqrec::StratifiedEvalResult sr =
      seqrec::EvaluateRankingByPopularity(rec.get(), split.test, split.train,
                                          8, 0.2);
  EXPECT_EQ(sr.head.count + sr.tail.count, split.test.size());
}

TEST(SampledEvalTest, SampledMetricsNotBelowFull) {
  // With fewer competitors, sampled Recall@20 can only be >= full Recall@20
  // for the same model (in expectation; with a fixed seed we check >=
  // directly on a trained model where the gap is large).
  const data::Dataset& ds = TinyData().dataset;
  seqrec::SasRecConfig mc;
  mc.hidden_dim = 16;
  mc.num_blocks = 1;
  mc.max_len = 8;
  auto rec = seqrec::MakeSasRecId(ds, mc);
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig tc;
  tc.epochs = 3;
  rec->Fit(split, tc);
  const seqrec::EvalResult full =
      seqrec::EvaluateRanking(rec.get(), split.test, split.train, 8);
  const seqrec::EvalResult sampled = seqrec::EvaluateRankingSampled(
      rec.get(), split.test, split.train, 8, /*num_negatives=*/20);
  EXPECT_GE(sampled.recall20 + 1e-12, full.recall20);
}

}  // namespace
}  // namespace whitenrec
