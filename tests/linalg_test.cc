#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/rng.h"
#include "linalg/stats.h"

namespace whitenrec {
namespace linalg {
namespace {

// ---------------------------------------------------------------------------
// Matrix basics
// ---------------------------------------------------------------------------

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(3, 2, 1.5);
  for (std::size_t i = 0; i < m.size(); ++i)
    EXPECT_DOUBLE_EQ(m.data()[i], 1.5);
}

TEST(MatrixTest, Identity) {
  const Matrix eye = Matrix::Identity(4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
}

TEST(MatrixTest, FromRows) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, RowColAccessors) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.Row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.Col(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, SetRow) {
  Matrix m(2, 2);
  m.SetRow(0, {7, 8});
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
}

TEST(MatrixTest, RowSlice) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  const Matrix s = m.RowSlice(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 6.0);
}

TEST(MatrixTest, ColSliceAndSetColSlice) {
  Matrix m = Matrix::FromRows({{1, 2, 3, 4}, {5, 6, 7, 8}});
  const Matrix s = m.ColSlice(1, 3);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 7.0);
  Matrix block = Matrix::FromRows({{-1, -2}, {-3, -4}});
  m.SetColSlice(1, block);
  EXPECT_DOUBLE_EQ(m(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), -4.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);  // untouched
  EXPECT_DOUBLE_EQ(m(1, 3), 8.0);  // untouched
}

TEST(MatrixTest, InPlaceArithmetic) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  a += b;
  EXPECT_DOUBLE_EQ(a(1, 1), 44.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
}

TEST(MatrixTest, FrobeniusNormAndMaxAbs) {
  const Matrix m = Matrix::FromRows({{3, 0}, {0, -4}});
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
}

// ---------------------------------------------------------------------------
// Matrix products
// ---------------------------------------------------------------------------

TEST(MatMulTest, KnownProduct) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = rng.GaussianMatrix(4, 4, 1.0);
  const Matrix c = MatMul(a, Matrix::Identity(4));
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(c.data()[i], a.data()[i], 1e-12);
}

TEST(MatMulTest, TransAMatchesExplicitTranspose) {
  Rng rng(2);
  const Matrix a = rng.GaussianMatrix(5, 3, 1.0);
  const Matrix b = rng.GaussianMatrix(5, 4, 1.0);
  const Matrix fast = MatMulTransA(a, b);
  const Matrix slow = MatMul(Transpose(a), b);
  EXPECT_EQ(fast.rows(), 3u);
  EXPECT_EQ(fast.cols(), 4u);
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-12);
}

TEST(MatMulTest, TransBMatchesExplicitTranspose) {
  Rng rng(3);
  const Matrix a = rng.GaussianMatrix(4, 3, 1.0);
  const Matrix b = rng.GaussianMatrix(6, 3, 1.0);
  const Matrix fast = MatMulTransB(a, b);
  const Matrix slow = MatMul(a, Transpose(b));
  for (std::size_t i = 0; i < fast.size(); ++i)
    EXPECT_NEAR(fast.data()[i], slow.data()[i], 1e-12);
}

TEST(MatMulTest, MatVecMatchesMatMul) {
  Rng rng(4);
  const Matrix a = rng.GaussianMatrix(4, 3, 1.0);
  const std::vector<double> x = {1.0, -2.0, 0.5};
  const std::vector<double> y = MatVec(a, x);
  for (std::size_t i = 0; i < 4; ++i) {
    double expected = 0.0;
    for (std::size_t j = 0; j < 3; ++j) expected += a(i, j) * x[j];
    EXPECT_NEAR(y[i], expected, 1e-12);
  }
}

TEST(MatMulTest, HadamardAndAxpy) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{2, 2}, {2, 2}});
  const Matrix h = Hadamard(a, b);
  EXPECT_DOUBLE_EQ(h(1, 0), 6.0);
  Matrix acc = a;
  Axpy(0.5, b, &acc);
  EXPECT_DOUBLE_EQ(acc(0, 0), 2.0);
}

TEST(MatMulTest, DotAndNorm) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
}

TEST(MatMulTest, TransposeRoundTrip) {
  Rng rng(5);
  const Matrix a = rng.GaussianMatrix(3, 7, 1.0);
  const Matrix tt = Transpose(Transpose(a));
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(tt.data()[i], a.data()[i]);
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.NextU64() == b.NextU64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyHalf) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, GaussianShifted) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(12);
  std::vector<double> w = {1.0, 3.0};
  int second = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.Categorical(w) == 1) ++second;
  EXPECT_NEAR(second / static_cast<double>(n), 0.75, 0.03);
}

TEST(RngTest, SampleLogitsFollowsSoftmax) {
  Rng rng(13);
  // logits (0, log 3) -> probabilities (0.25, 0.75).
  std::vector<double> logits = {0.0, std::log(3.0)};
  int second = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.SampleLogits(logits) == 1) ++second;
  EXPECT_NEAR(second / static_cast<double>(n), 0.75, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(14);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// ---------------------------------------------------------------------------
// Eigendecomposition
// ---------------------------------------------------------------------------

TEST(EigenTest, DiagonalMatrix) {
  const Matrix d = Matrix::FromRows({{3, 0, 0}, {0, 1, 0}, {0, 0, 2}});
  auto result = SymmetricEigen(d);
  ASSERT_TRUE(result.ok());
  const auto& e = result.value();
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 2.0, 1e-10);
  EXPECT_NEAR(e.values[2], 1.0, 1e-10);
}

TEST(EigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  const Matrix m = Matrix::FromRows({{2, 1}, {1, 2}});
  auto result = SymmetricEigen(m);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().values[0], 3.0, 1e-10);
  EXPECT_NEAR(result.value().values[1], 1.0, 1e-10);
}

TEST(EigenTest, NotSquareFails) {
  const Matrix m(2, 3);
  EXPECT_FALSE(SymmetricEigen(m).ok());
}

class EigenReconstructionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenReconstructionTest, ReconstructsInput) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  Matrix a = rng.GaussianMatrix(n, n, 1.0);
  Matrix sym = Add(a, Transpose(a));
  sym *= 0.5;
  auto result = SymmetricEigen(sym);
  ASSERT_TRUE(result.ok());
  const auto& e = result.value();
  // Reconstruct V diag(lambda) V^T.
  Matrix scaled = e.vectors;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) scaled(i, j) *= e.values[j];
  const Matrix recon = MatMulTransB(scaled, e.vectors);
  for (std::size_t i = 0; i < recon.size(); ++i)
    EXPECT_NEAR(recon.data()[i], sym.data()[i], 1e-8);
}

TEST_P(EigenReconstructionTest, EigenvectorsOrthonormal) {
  const std::size_t n = GetParam();
  Rng rng(200 + n);
  Matrix a = rng.GaussianMatrix(n, n, 1.0);
  Matrix sym = Add(a, Transpose(a));
  sym *= 0.5;
  auto result = SymmetricEigen(sym);
  ASSERT_TRUE(result.ok());
  const Matrix vtv =
      MatMulTransA(result.value().vectors, result.value().vectors);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST_P(EigenReconstructionTest, ValuesSortedDescending) {
  const std::size_t n = GetParam();
  Rng rng(300 + n);
  Matrix a = rng.GaussianMatrix(n, n, 1.0);
  Matrix sym = Add(a, Transpose(a));
  sym *= 0.5;
  auto result = SymmetricEigen(sym);
  ASSERT_TRUE(result.ok());
  const auto& vals = result.value().values;
  for (std::size_t i = 1; i < vals.size(); ++i)
    EXPECT_GE(vals[i - 1], vals[i] - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenReconstructionTest,
                         ::testing::Values(2, 3, 5, 8, 16, 32));

TEST(EigenTest, SingularValuesOfOrthogonalScaled) {
  // X = 2 * I (3x3): singular values all 2.
  Matrix x = Matrix::Identity(3);
  x *= 2.0;
  auto sv = SingularValues(x);
  ASSERT_TRUE(sv.ok());
  for (double v : sv.value()) EXPECT_NEAR(v, 2.0, 1e-10);
}

TEST(EigenTest, SingularValuesRankOne) {
  // Outer product has exactly one non-zero singular value.
  Matrix x(4, 3);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      x(i, j) = static_cast<double>(i + 1) * static_cast<double>(j + 1);
  auto sv = SingularValues(x);
  ASSERT_TRUE(sv.ok());
  EXPECT_GT(sv.value()[0], 1.0);
  for (std::size_t i = 1; i < sv.value().size(); ++i)
    EXPECT_NEAR(sv.value()[i], 0.0, 1e-8);
}

TEST(EigenTest, ConditionNumberIdentity) {
  auto kappa = ConditionNumber(Matrix::Identity(5));
  ASSERT_TRUE(kappa.ok());
  EXPECT_NEAR(kappa.value(), 1.0, 1e-9);
}

TEST(EigenTest, ConditionNumberAnisotropic) {
  const Matrix d = Matrix::FromRows({{100, 0}, {0, 1}});
  auto kappa = ConditionNumber(d);
  ASSERT_TRUE(kappa.ok());
  EXPECT_NEAR(kappa.value(), 100.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Cholesky
// ---------------------------------------------------------------------------

TEST(CholeskyTest, IdentityFactorsToIdentity) {
  auto l = Cholesky(Matrix::Identity(4));
  ASSERT_TRUE(l.ok());
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(l.value()(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(CholeskyTest, ReconstructsSpdMatrix) {
  Rng rng(500);
  const Matrix a = rng.GaussianMatrix(6, 6, 1.0);
  Matrix spd = MatMulTransB(a, a);  // A A^T is PSD; add ridge for PD
  for (std::size_t i = 0; i < 6; ++i) spd(i, i) += 0.5;
  auto l = Cholesky(spd);
  ASSERT_TRUE(l.ok());
  const Matrix recon = MatMulTransB(l.value(), l.value());
  for (std::size_t i = 0; i < spd.size(); ++i)
    EXPECT_NEAR(recon.data()[i], spd.data()[i], 1e-9);
}

TEST(CholeskyTest, LowerTriangularOutput) {
  Rng rng(501);
  const Matrix a = rng.GaussianMatrix(5, 5, 1.0);
  Matrix spd = MatMulTransB(a, a);
  for (std::size_t i = 0; i < 5; ++i) spd(i, i) += 0.5;
  auto l = Cholesky(spd);
  ASSERT_TRUE(l.ok());
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j)
      EXPECT_DOUBLE_EQ(l.value()(i, j), 0.0);
}

TEST(CholeskyTest, RejectsNonPd) {
  const Matrix m = Matrix::FromRows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky(m).ok());
}

TEST(CholeskyTest, RejectsNonSquare) { EXPECT_FALSE(Cholesky(Matrix(2, 3)).ok()); }

TEST(CholeskyTest, InverseTimesOriginalIsIdentity) {
  Rng rng(502);
  const Matrix a = rng.GaussianMatrix(5, 5, 1.0);
  Matrix spd = MatMulTransB(a, a);
  for (std::size_t i = 0; i < 5; ++i) spd(i, i) += 0.5;
  auto l = Cholesky(spd);
  ASSERT_TRUE(l.ok());
  auto linv = LowerTriangularInverse(l.value());
  ASSERT_TRUE(linv.ok());
  const Matrix prod = MatMul(linv.value(), l.value());
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(CholeskyTest, ForwardSolve) {
  const Matrix l = Matrix::FromRows({{2, 0}, {1, 3}});
  auto x = ForwardSolve(l, {4, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 2.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 8.0 / 3.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(StatsTest, ColumnMean) {
  const Matrix m = Matrix::FromRows({{1, 10}, {3, 20}});
  const std::vector<double> mean = ColumnMean(m);
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 15.0);
}

TEST(StatsTest, CenterColumnsZeroesMeans) {
  Rng rng(600);
  Matrix m = rng.GaussianMatrix(50, 4, 2.0);
  CenterColumns(&m);
  const std::vector<double> mean = ColumnMean(m);
  for (double v : mean) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(StatsTest, CovarianceOfIsotropicData) {
  Rng rng(601);
  const Matrix x = rng.GaussianMatrix(20000, 3, 1.0);
  const Matrix cov = Covariance(x);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(cov(i, j), i == j ? 1.0 : 0.0, 0.05);
}

TEST(StatsTest, CovarianceEpsilonRidge) {
  const Matrix x = Matrix::FromRows({{1, 1}, {1, 1}, {1, 1}});
  const Matrix cov = Covariance(x, 0.5);
  EXPECT_NEAR(cov(0, 0), 0.5, 1e-12);  // zero variance + ridge
  EXPECT_NEAR(cov(0, 1), 0.0, 1e-12);
}

TEST(StatsTest, CosineSimilarityBasics) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 0}), 0.0);
}

TEST(StatsTest, MeanPairwiseCosineOfParallelRows) {
  // All rows identical direction: mean cosine = 1.
  Matrix x(10, 3);
  for (std::size_t r = 0; r < 10; ++r) {
    x(r, 0) = static_cast<double>(r + 1);
  }
  Rng rng(602);
  EXPECT_NEAR(MeanPairwiseCosine(x, &rng), 1.0, 1e-12);
}

TEST(StatsTest, MeanPairwiseCosineOfIsotropicCloudNearZero) {
  Rng rng(603);
  const Matrix x = rng.GaussianMatrix(300, 16, 1.0);
  Rng rng2(604);
  EXPECT_NEAR(MeanPairwiseCosine(x, &rng2), 0.0, 0.05);
}

TEST(StatsTest, PairwiseCosinesCountExact) {
  Rng rng(605);
  const Matrix x = rng.GaussianMatrix(10, 4, 1.0);
  const std::vector<double> cosines = PairwiseCosines(x, &rng, 1000);
  EXPECT_EQ(cosines.size(), 45u);  // 10 choose 2
}

TEST(StatsTest, PairwiseCosinesSampledCap) {
  Rng rng(606);
  const Matrix x = rng.GaussianMatrix(200, 4, 1.0);
  const std::vector<double> cosines = PairwiseCosines(x, &rng, 500);
  EXPECT_EQ(cosines.size(), 500u);
}

TEST(StatsTest, EmpiricalCdfMonotone) {
  std::vector<double> samples = {0.1, 0.5, 0.5, 0.9};
  const auto cdf = EmpiricalCdf(samples, 11, 0.0, 1.0);
  EXPECT_EQ(cdf.size(), 11u);
  EXPECT_DOUBLE_EQ(cdf.front().cdf, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().cdf, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i)
    EXPECT_GE(cdf[i].cdf, cdf[i - 1].cdf);
}

TEST(StatsTest, EmpiricalCdfMidpoint) {
  std::vector<double> samples = {0.0, 1.0};
  const auto cdf = EmpiricalCdf(samples, 3, -0.5, 1.5);
  EXPECT_DOUBLE_EQ(cdf[1].cdf, 0.5);  // threshold 0.5 covers one sample
}

TEST(StatsTest, MeanVariance) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
}

}  // namespace
}  // namespace linalg
}  // namespace whitenrec
