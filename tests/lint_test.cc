// Unit tests for the determinism linter (tools/lint). Each rule gets a
// seeded violation that must be caught and an exempt/clean variant that must
// not be. Violating snippets are built from ordinary string literals, so the
// tree-level lint pass (which scrubs literals) never trips on this file.

#include "tools/lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace whitenrec {
namespace lint {
namespace {

std::vector<Finding> FindingsFor(const std::string& path,
                                 const std::string& contents,
                                 const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : LintFile(path, contents)) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------------------
// ScrubSource
// ---------------------------------------------------------------------------

TEST(ScrubSourceTest, BlanksCommentsAndStringsPreservingLines) {
  const std::string src =
      "int a = 1;  // std::thread in a comment\n"
      "const char* s = \"std::thread in a string\";\n"
      "/* block\n"
      "   std::thread\n"
      "*/ int b = 2;\n";
  const std::string scrubbed = ScrubSource(src);
  EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
            std::count(scrubbed.begin(), scrubbed.end(), '\n'));
  EXPECT_EQ(scrubbed.find("std::thread"), std::string::npos);
  EXPECT_NE(scrubbed.find("int a = 1;"), std::string::npos);
  EXPECT_NE(scrubbed.find("int b = 2;"), std::string::npos);
}

TEST(ScrubSourceTest, BlanksRawStringsAndCharLiterals) {
  const std::string src =
      "auto re = std::regex(R\"(std::thread|rand\\()\");\n"
      "char c = ';';\n"
      "int tail = 3;\n";
  const std::string scrubbed = ScrubSource(src);
  EXPECT_EQ(scrubbed.find("thread"), std::string::npos);
  EXPECT_EQ(scrubbed.find("rand"), std::string::npos);
  EXPECT_NE(scrubbed.find("int tail = 3;"), std::string::npos);
}

TEST(ScrubSourceTest, ViolationInsideLiteralIsNotReported) {
  const std::string src =
      "const char* doc = \"call std::thread here\";\n"
      "// std::random_device commentary\n";
  EXPECT_TRUE(LintFile("src/core/doc.cc", src).empty());
}

TEST(ScrubSourceTest, BlanksPrefixedRawStrings) {
  // Regression: the old per-character scrubber only recognized a bare R"(
  // opener, so the u8R / uR / UR / LR raw-string family leaked its contents
  // into the scrubbed text and produced phantom rule hits.
  const std::string src =
      "auto a = u8R\"(std::thread inside)\";\n"
      "auto b = LR\"sep(std::random_device)sep\";\n"
      "int tail = 3;\n";
  const std::string scrubbed = ScrubSource(src);
  EXPECT_EQ(scrubbed.find("thread"), std::string::npos);
  EXPECT_EQ(scrubbed.find("random_device"), std::string::npos);
  EXPECT_NE(scrubbed.find("int tail = 3;"), std::string::npos);
  EXPECT_TRUE(LintFile("src/core/doc.cc", src).empty());
}

TEST(ScrubSourceTest, DigitSeparatorDoesNotDesyncScrubbing) {
  // Regression: 1'000'000 is one pp-number, not the start of a char
  // literal; a desynced scrubber would leave the later string unblanked.
  const std::string src =
      "const long n = 1'000'000;\n"
      "const char* s = \"std::thread\";\n"
      "int tail = 3;\n";
  const std::string scrubbed = ScrubSource(src);
  EXPECT_EQ(scrubbed.find("thread"), std::string::npos);
  EXPECT_NE(scrubbed.find("int tail = 3;"), std::string::npos);
  EXPECT_TRUE(LintFile("src/core/num.cc", src).empty());
}

// ---------------------------------------------------------------------------
// raw-thread
// ---------------------------------------------------------------------------

TEST(RawThreadTest, CatchesStdThreadOutsideCoreParallel) {
  const std::string src =
      "#include <thread>\n"
      "void Spawn() {\n"
      "  std::thread t([] {});\n"
      "  t.join();\n"
      "}\n";
  const auto findings = FindingsFor("src/seqrec/worker.cc", src, "raw-thread");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(RawThreadTest, CatchesOpenMpPragma) {
  const std::string src =
      "void Sum() {\n"
      "#pragma omp parallel for\n"
      "  for (int i = 0; i < 4; ++i) {}\n"
      "}\n";
  EXPECT_TRUE(HasRule(LintFile("src/linalg/sum.cc", src), "raw-thread"));
}

TEST(RawThreadTest, CatchesPthreadCreateInServe) {
  const std::string src =
      "void Spawn() {\n"
      "  pthread_t tid;\n"
      "  pthread_create(&tid, nullptr, Worker, nullptr);\n"
      "}\n";
  const auto findings = FindingsFor("src/serve/service.cc", src, "raw-thread");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].line, 3u);
}

TEST(RawThreadTest, ExemptInCoreParallel) {
  const std::string src = "std::thread worker_;\n";
  EXPECT_TRUE(LintFile("src/core/parallel.cc", src).empty());
  // The .h variant is exempt from raw-thread too (the include-guard rule
  // still applies to it, so only assert on this rule).
  EXPECT_FALSE(HasRule(LintFile("src/core/parallel.h", src), "raw-thread"));
}

// ---------------------------------------------------------------------------
// raw-rng
// ---------------------------------------------------------------------------

TEST(RawRngTest, CatchesRandomDeviceAndRand) {
  const std::string src =
      "std::random_device rd;\n"
      "int r = rand();\n"
      "srand(42);\n";
  const auto findings = FindingsFor("src/data/shuffle.cc", src, "raw-rng");
  EXPECT_EQ(findings.size(), 3u);
}

TEST(RawRngTest, CatchesTimeBasedSeeding) {
  const std::string src =
      "auto seed = std::chrono::steady_clock::now().time_since_epoch();\n";
  EXPECT_TRUE(HasRule(LintFile("tests/foo_test.cc", src), "raw-rng"));
}

TEST(RawRngTest, ExemptInLinalgRng) {
  const std::string src = "std::random_device rd;\n";
  EXPECT_TRUE(LintFile("src/linalg/rng.h", src).empty() ||
              !HasRule(LintFile("src/linalg/rng.h", src), "raw-rng"));
}

// ---------------------------------------------------------------------------
// unordered-float
// ---------------------------------------------------------------------------

TEST(UnorderedFloatTest, CatchesRangeForAccumulation) {
  const std::string src =
      "double Total(const std::unordered_map<int, double>& weights) {\n"
      "  double sum = 0.0;\n"
      "  for (const auto& kv : weights) {\n"
      "    sum += kv.second;\n"
      "  }\n"
      "  return sum;\n"
      "}\n";
  const auto findings =
      FindingsFor("src/seqrec/score.cc", src, "unordered-float");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4u);
}

TEST(UnorderedFloatTest, OrderedMapIsClean) {
  const std::string src =
      "double Total(const std::map<int, double>& weights) {\n"
      "  double sum = 0.0;\n"
      "  for (const auto& kv : weights) {\n"
      "    sum += kv.second;\n"
      "  }\n"
      "  return sum;\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/seqrec/score.cc", src).empty());
}

TEST(UnorderedFloatTest, IntegerAccumulationIsClean) {
  const std::string src =
      "int Count(const std::unordered_set<int>& ids) {\n"
      "  int n = 0;\n"
      "  for (int id : ids) {\n"
      "    n += id;\n"
      "  }\n"
      "  return n;\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/seqrec/count.cc", src).empty());
}

// ---------------------------------------------------------------------------
// hand-rolled-gemm
// ---------------------------------------------------------------------------

TEST(HandRolledGemmTest, CatchesTripleLoopMultiplyAccumulate) {
  const std::string src =
      "void Mul(const M& a, const M& b, M* c) {\n"
      "  for (std::size_t i = 0; i < a.rows(); ++i) {\n"
      "    for (std::size_t j = 0; j < b.cols(); ++j) {\n"
      "      double acc = 0.0;\n"
      "      for (std::size_t k = 0; k < a.cols(); ++k) {\n"
      "        acc += a(i, k) * b(k, j);\n"
      "      }\n"
      "      (*c)(i, j) = acc;\n"
      "    }\n"
      "  }\n"
      "}\n";
  const auto findings =
      FindingsFor("src/seqrec/model.cc", src, "hand-rolled-gemm");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 6u);
}

TEST(HandRolledGemmTest, ExemptInGemmKernelFile) {
  const std::string src =
      "void Mul(const M& a, const M& b, M* c) {\n"
      "  for (std::size_t i = 0; i < a.rows(); ++i) {\n"
      "    for (std::size_t j = 0; j < b.cols(); ++j) {\n"
      "      double acc = 0.0;\n"
      "      for (std::size_t k = 0; k < a.cols(); ++k) {\n"
      "        acc += a(i, k) * b(k, j);\n"
      "      }\n"
      "    }\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/linalg/gemm.cc", src).empty());
}

TEST(HandRolledGemmTest, DoubleLoopDotProductIsClean) {
  const std::string src =
      "double Dot(const V& a, const V& b) {\n"
      "  double acc = 0.0;\n"
      "  for (std::size_t r = 0; r < 4; ++r) {\n"
      "    for (std::size_t k = 0; k < a.size(); ++k) {\n"
      "      acc += a[k] * b[k];\n"
      "    }\n"
      "  }\n"
      "  return acc;\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/linalg/dot.cc", src).empty());
}

TEST(HandRolledGemmTest, BracelessInnerLoopStillCounts) {
  const std::string src =
      "void Mul(const M& a, const M& b, M* c) {\n"
      "  for (std::size_t i = 0; i < 4; ++i) {\n"
      "    for (std::size_t j = 0; j < 4; ++j) {\n"
      "      for (std::size_t k = 0; k < 4; ++k)\n"
      "        (*c)(i, j) += a(i, k) * b(k, j);\n"
      "    }\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(
      HasRule(LintFile("src/seqrec/model.cc", src), "hand-rolled-gemm"));
}

TEST(HandRolledGemmTest, BracelessSingleStatementLoopsDoNotLeakDepth) {
  // Two sibling one-line loops followed by a double loop: the one-liners
  // must not stay on the loop stack and fake a triple nest.
  const std::string src =
      "void Stats(const M& y, double* mean, double* acc) {\n"
      "  for (std::size_t r = 0; r < 4; ++r) *mean += y(r, 0);\n"
      "  for (std::size_t r = 0; r < 4; ++r) *mean += y(r, 1);\n"
      "  for (std::size_t r = 0; r < 4; ++r) {\n"
      "    for (std::size_t k = 0; k < 4; ++k) {\n"
      "      *acc += y(r, k) * y(k, r);\n"
      "    }\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/analysis/stats.cc", src).empty());
}

// ---------------------------------------------------------------------------
// full-logits
// ---------------------------------------------------------------------------

TEST(FullLogitsTest, CatchesConstructorWithItemColumns) {
  const std::string src =
      "void Score(const Batch& batch) {\n"
      "  Matrix scores(batch.batch_size, impl_->num_items);\n"
      "}\n";
  const auto findings =
      FindingsFor("src/seqrec/scorer.cc", src, "full-logits");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(FullLogitsTest, CatchesResizeAndWorkspaceMat) {
  const std::string src =
      "void Score(Matrix* out, std::size_t rows) {\n"
      "  out->Resize(rows, num_items);\n"
      "  Matrix& logits = ws.Mat(kWsLogits, rows, num_items);\n"
      "  (void)logits;\n"
      "}\n";
  const auto findings =
      FindingsFor("src/seqrec/scorer.cc", src, "full-logits");
  EXPECT_EQ(findings.size(), 2u);
}

TEST(FullLogitsTest, ItemTableWithLeadingItemRowsIsClean) {
  // (num_items, d) tables are the item embeddings themselves, not a logits
  // buffer; only num_items in a column (non-leading) position flags.
  const std::string src =
      "void Build(std::size_t num_items, std::size_t dim) {\n"
      "  Matrix v(num_items, dim);\n"
      "  v.Resize(num_items, dim);\n"
      "  Matrix& t = ws.Mat(kWsTable, num_items, dim);\n"
      "  Matrix e = rng.GaussianMatrix(num_items, dim, 0.02);\n"
      "  (void)t;\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/seqrec/table.cc", src).empty());
}

TEST(FullLogitsTest, BenchAndTestsMayMaterialize) {
  const std::string src = "  Matrix scores(rows, num_items);\n";
  EXPECT_TRUE(LintFile("bench/bench_foo.cc", src).empty());
  EXPECT_TRUE(LintFile("tests/foo_test.cc", src).empty());
}

TEST(FullLogitsTest, CatchesPerCatalogVectorInServe) {
  // In src/serve/ even a 1-D catalog-sized buffer violates the O(K)
  // micro-batch contract; the same lines are legitimate elsewhere in src/.
  const std::string decl = "  std::vector<double> scores(num_items);\n";
  const std::string resize = "  scores.resize(num_items, 0.0);\n";
  const std::string assign = "  excluded.assign(num_items, 0);\n";
  for (const std::string& src : {decl, resize, assign}) {
    EXPECT_TRUE(
        HasRule(LintFile("src/serve/service.cc", src), "full-logits"))
        << src;
    EXPECT_FALSE(
        HasRule(LintFile("src/seqrec/trainer.cc", src), "full-logits"))
        << src;
  }
  // O(K) state stays clean in serve/.
  const std::string ok = "  std::vector<double> topk_scores(config_.top_k);\n";
  EXPECT_FALSE(HasRule(LintFile("src/serve/service.cc", ok), "full-logits"));
}

TEST(FullLogitsTest, AllowAnnotationSilences) {
  const std::string src =
      "// whitenrec-lint: allow(full-logits)\n"
      "Matrix scores(batch.batch_size, num_items);\n";
  EXPECT_TRUE(LintFile("src/seqrec/scorer.cc", src).empty());
}

TEST(FullLogitsTest, CatchesPerCatalogVectorInRetrieval) {
  // src/retrieval/ query paths must be O(clusters + candidates): the tight
  // per-catalog-vector net that guards serve/ applies there too.
  const std::string decl = "  std::vector<double> dist(num_items);\n";
  const std::string assign = "  assignment.assign(num_items, 0);\n";
  for (const std::string& src : {decl, assign}) {
    EXPECT_TRUE(
        HasRule(LintFile("src/retrieval/ivf_index.cc", src), "full-logits"))
        << src;
    EXPECT_FALSE(
        HasRule(LintFile("src/eval/metrics.cc", src), "full-logits"))
        << src;
  }
  // O(clusters)/O(K) state stays clean.
  const std::string ok =
      "  std::vector<std::size_t> counts(clusters, 0);\n"
      "  linalg::TopKSelector probe_selector(probes);\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/retrieval/ivf_index.cc", ok), "full-logits"));
}

TEST(FullLogitsTest, RetrievalIndexBuilderAllowIsScoped) {
  // The index builder legitimately labels every item once; the scoped allow
  // silences exactly that line and nothing else in the file.
  const std::string src =
      "void Build(std::size_t num_items) {\n"
      "  // whitenrec-lint: allow(full-logits)\n"
      "  assignment.assign(num_items, 0);\n"
      "  std::vector<double> dist(num_items);\n"
      "}\n";
  const auto findings =
      FindingsFor("src/retrieval/kmeans.cc", src, "full-logits");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4u);
}

// ---------------------------------------------------------------------------
// stdout-in-library
// ---------------------------------------------------------------------------

TEST(StdoutInLibraryTest, CatchesPrintfInSrc) {
  const std::string src =
      "void Log(const char* msg) {\n"
      "  std::printf(msg);\n"
      "  std::cout << msg;\n"
      "}\n";
  const auto findings =
      FindingsFor("src/seqrec/log.cc", src, "stdout-in-library");
  EXPECT_EQ(findings.size(), 2u);
}

TEST(StdoutInLibraryTest, StderrIsAllowed) {
  const std::string src =
      "void Log(const char* msg) {\n"
      "  std::fprintf(stderr, msg);\n"
      "}\n";
  EXPECT_TRUE(LintFile("src/seqrec/log.cc", src).empty());
}

TEST(StdoutInLibraryTest, BenchAndExamplesMayPrint) {
  const std::string src = "  std::printf(msg);\n";
  EXPECT_TRUE(LintFile("bench/bench_foo.cc", src).empty());
  EXPECT_TRUE(LintFile("examples/demo.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// raw-io
// ---------------------------------------------------------------------------

TEST(RawIoTest, CatchesOfstreamAndFopenInSrc) {
  const std::string src =
      "void Dump(const std::string& path) {\n"
      "  std::ofstream out(path);\n"
      "  FILE* f = fopen(path.c_str(), \"wb\");\n"
      "}\n";
  const auto findings = FindingsFor("src/data/dump.cc", src, "raw-io");
  EXPECT_EQ(findings.size(), 2u);
}

TEST(RawIoTest, CatchesPosixWriteModeOpen) {
  const std::string src =
      "  int fd = ::open(p, O_WRONLY | O_CREAT | O_TRUNC, 0644);\n";
  EXPECT_EQ(FindingsFor("src/nn/dump.cc", src, "raw-io").size(), 1u);
}

TEST(RawIoTest, ExemptInFaultfs) {
  const std::string src =
      "  int fd = ::open(p, O_WRONLY | O_CREAT | O_TRUNC, 0644);\n";
  EXPECT_TRUE(FindingsFor("src/core/faultfs.cc", src, "raw-io").empty());
}

TEST(RawIoTest, ReadOnlyStreamsAndNonSrcAreClean) {
  const std::string read_src = "  std::ifstream in(path);\n";
  EXPECT_TRUE(FindingsFor("src/data/io.cc", read_src, "raw-io").empty());
  const std::string write_src = "  std::ofstream out(path);\n";
  EXPECT_TRUE(FindingsFor("tests/foo_test.cc", write_src, "raw-io").empty());
  EXPECT_TRUE(FindingsFor("tools/lint/lint.cc", write_src, "raw-io").empty());
}

TEST(RawIoTest, AllowAnnotationSilences) {
  const std::string src =
      "  // whitenrec-lint: allow(raw-io)\n"
      "  std::ofstream out(path);\n";
  EXPECT_TRUE(FindingsFor("src/data/dump.cc", src, "raw-io").empty());
}

// ---------------------------------------------------------------------------
// include-guard
// ---------------------------------------------------------------------------

TEST(IncludeGuardTest, AcceptsCanonicalGuard) {
  const std::string src =
      "#ifndef WHITENREC_CORE_FOO_H_\n"
      "#define WHITENREC_CORE_FOO_H_\n"
      "#endif\n";
  EXPECT_TRUE(LintFile("src/core/foo.h", src).empty());
}

TEST(IncludeGuardTest, RejectsWrongGuardName) {
  const std::string src =
      "#ifndef FOO_H\n"
      "#define FOO_H\n"
      "#endif\n";
  const auto findings =
      FindingsFor("src/core/foo.h", src, "include-guard");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("WHITENREC_CORE_FOO_H_"),
            std::string::npos);
}

TEST(IncludeGuardTest, RejectsPragmaOnce) {
  const std::string src = "#pragma once\n";
  EXPECT_TRUE(HasRule(LintFile("src/core/foo.h", src), "include-guard"));
}

TEST(IncludeGuardTest, TestsAndBenchKeepDirectoryPrefix) {
  const std::string ok =
      "#ifndef WHITENREC_BENCH_BENCH_JSON_H_\n"
      "#define WHITENREC_BENCH_BENCH_JSON_H_\n"
      "#endif\n";
  EXPECT_TRUE(LintFile("bench/bench_json.h", ok).empty());
  const std::string wrong =
      "#ifndef WHITENREC_BENCH_JSON_H_\n"
      "#define WHITENREC_BENCH_JSON_H_\n"
      "#endif\n";
  EXPECT_TRUE(HasRule(LintFile("bench/bench_json.h", wrong), "include-guard"));
}

TEST(IncludeGuardTest, SourceFilesAreExempt) {
  EXPECT_TRUE(LintFile("src/core/foo.cc", "int x = 1;\n").empty());
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(SuppressionTest, SameLineAllowSilencesRule) {
  const std::string src =
      "std::random_device rd;  // whitenrec-lint: allow(raw-rng)\n";
  EXPECT_TRUE(LintFile("src/data/entropy.cc", src).empty());
}

TEST(SuppressionTest, PreviousLineAllowSilencesRule) {
  const std::string src =
      "// whitenrec-lint: allow(raw-thread)\n"
      "std::thread t;\n";
  EXPECT_TRUE(LintFile("src/data/worker.cc", src).empty());
}

TEST(SuppressionTest, AllowForOtherRuleDoesNotSilence) {
  const std::string src =
      "std::random_device rd;  // whitenrec-lint: allow(raw-thread)\n";
  EXPECT_TRUE(HasRule(LintFile("src/data/entropy.cc", src), "raw-rng"));
}

// ---------------------------------------------------------------------------
// Tree walk over the real repository
// ---------------------------------------------------------------------------

TEST(LintTreeTest, RepositoryIsClean) {
  // The lint.tree ctest entry runs the binary against the live tree; here we
  // exercise the library path against a nonexistent root (no dirs -> clean).
  EXPECT_TRUE(LintTree("/nonexistent-whitenrec-root").empty());
}

}  // namespace
}  // namespace lint
}  // namespace whitenrec
