// Fused (streaming) softmax cross-entropy vs. the materialized reference.
// Contracts under test (ISSUE 4): StreamingSoftmaxCrossEntropy agrees with
// the materialized logits -> SoftmaxCrossEntropy -> GEMM-backprop pipeline
// to <= 1e-10 relative on loss, dH and dV across batch/length/catalog/tile
// combinations; fused results are bitwise identical at every thread count;
// the fused path's scratch high-water mark stays well below one full
// (rows, num_items) logits matrix; and under WHITENREC_DEBUG_CHECKS the
// fused path's WR_CHECK_FINITE trips on non-finite inputs. The finite
// contract lives inside the library (nn/loss.cc), so the death test is
// active only when the whole tree is built with WHITENREC_DEBUG_CHECKS=ON
// (`make check-debug` reruns this suite in such a tree); the default build
// instead asserts the check compiles out and does not abort.

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/parallel.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "linalg/rng.h"
#include "linalg/workspace.h"
#include "nn/loss.h"

namespace whitenrec {
namespace nn {
namespace {

using linalg::Matrix;
using linalg::Rng;

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : saved_(core::NumThreads()) {
    core::SetNumThreads(n);
  }
  ~ScopedThreads() { core::SetNumThreads(saved_); }

 private:
  std::size_t saved_;
};

class ScopedScoreTile {
 public:
  explicit ScopedScoreTile(std::size_t tile)
      : saved_(linalg::ScoreTileCols()) {
    linalg::SetScoreTileCols(tile);
  }
  ~ScopedScoreTile() { linalg::SetScoreTileCols(saved_); }

 private:
  std::size_t saved_;
};

struct LossProblem {
  Matrix h;
  Matrix v;
  std::vector<std::size_t> targets;
  std::vector<double> weights;
};

// Deterministic synthetic problem; every few rows are weight-0 (padding).
LossProblem MakeProblem(std::size_t n, std::size_t num_items, std::size_t d,
                        std::uint64_t seed) {
  Rng rng(seed);
  LossProblem p;
  p.h = rng.GaussianMatrix(n, d, 1.0);
  p.v = rng.GaussianMatrix(num_items, d, 1.0);
  p.targets.resize(n);
  p.weights.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    p.targets[r] = rng.UniformInt(num_items);
    p.weights[r] = (r % 4 == 3) ? 0.0 : 1.0;
  }
  if (n > 0) p.weights[0] = 1.0;  // at least one active row
  return p;
}

struct LossResult {
  double loss = 0.0;
  Matrix dh;
  Matrix dv;
};

// Materialized reference: full logits, dense softmax CE, GEMM backprop.
LossResult MaterializedReference(const LossProblem& p) {
  LossResult r;
  const Matrix logits = linalg::MatMulTransB(p.h, p.v);
  Matrix dlogits;
  r.loss = SoftmaxCrossEntropy(logits, p.targets, p.weights, &dlogits);
  linalg::MatMulInto(dlogits, p.v, &r.dh);
  linalg::MatMulTransAInto(dlogits, p.h, &r.dv);
  return r;
}

LossResult Fused(const LossProblem& p) {
  LossResult r;
  r.loss = StreamingSoftmaxCrossEntropy(p.h, p.v, p.targets, p.weights,
                                        &r.dh, &r.dv);
  return r;
}

void ExpectRelClose(const Matrix& got, const Matrix& want, double tol,
                    const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double denom = std::max(1.0, std::abs(want.data()[i]));
    ASSERT_LE(std::abs(got.data()[i] - want.data()[i]) / denom, tol)
        << what << " at flat index " << i << " (" << got.data()[i] << " vs "
        << want.data()[i] << ")";
  }
}

void ExpectBitwiseEqual(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << what << " at flat index " << i;
  }
}

// ---------------------------------------------------------------------------
// Parity with the materialized pipeline
// ---------------------------------------------------------------------------

TEST(StreamingLossTest, MatchesMaterializedAcrossShapesAndTiles) {
  struct Shape {
    std::size_t n, num_items, d;
  };
  const Shape shapes[] = {
      {1, 3, 2},      // minimal
      {5, 17, 4},     // smaller than one tile
      {12, 300, 8},   // several tiles, ragged tail
      {64, 1000, 16}, // larger than the blocked-GEMM dispatch threshold
  };
  std::uint64_t seed = 100;
  for (const Shape& s : shapes) {
    const LossProblem p = MakeProblem(s.n, s.num_items, s.d, seed++);
    const LossResult ref = MaterializedReference(p);
    for (const std::size_t tile : {1u, 7u, 256u, 100000u}) {
      ScopedScoreTile st(tile);
      const LossResult fused = Fused(p);
      const double denom = std::max(1.0, std::abs(ref.loss));
      EXPECT_LE(std::abs(fused.loss - ref.loss) / denom, 1e-10)
          << "n=" << s.n << " items=" << s.num_items << " tile=" << tile;
      ExpectRelClose(fused.dh, ref.dh, 1e-10, "dH");
      ExpectRelClose(fused.dv, ref.dv, 1e-10, "dV");
    }
  }
}

TEST(StreamingLossTest, AccumulatesIntoExistingDv) {
  const LossProblem p = MakeProblem(8, 50, 4, 7);
  const LossResult ref = MaterializedReference(p);
  Matrix dh;
  Matrix dv(p.v.rows(), p.v.cols(), 1.0);  // pre-existing gradient content
  StreamingSoftmaxCrossEntropy(p.h, p.v, p.targets, p.weights, &dh, &dv);
  for (std::size_t i = 0; i < dv.size(); ++i) {
    const double want = 1.0 + ref.dv.data()[i];
    ASSERT_LE(std::abs(dv.data()[i] - want) / std::max(1.0, std::abs(want)),
              1e-10);
  }
}

TEST(StreamingLossTest, ZeroWeightRowsContributeNothing) {
  LossProblem p = MakeProblem(6, 40, 4, 9);
  // Give masked rows absurd representations: they must still be ignored.
  for (std::size_t r = 0; r < p.h.rows(); ++r) {
    if (p.weights[r] == 0.0) {
      for (std::size_t c = 0; c < p.h.cols(); ++c) p.h(r, c) = 1e6;
    }
  }
  const LossResult ref = MaterializedReference(p);
  const LossResult fused = Fused(p);
  EXPECT_LE(std::abs(fused.loss - ref.loss) / std::max(1.0, std::abs(ref.loss)),
            1e-10);
  for (std::size_t r = 0; r < p.h.rows(); ++r) {
    if (p.weights[r] != 0.0) continue;
    for (std::size_t c = 0; c < fused.dh.cols(); ++c) {
      EXPECT_EQ(fused.dh(r, c), 0.0);
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism across thread counts
// ---------------------------------------------------------------------------

TEST(StreamingLossTest, BitwiseIdenticalAcrossThreadCounts) {
  const LossProblem p = MakeProblem(48, 700, 16, 11);
  LossResult ref;
  {
    ScopedThreads t(1);
    ref = Fused(p);
  }
  for (const std::size_t threads : {2u, 8u}) {
    ScopedThreads t(threads);
    const LossResult got = Fused(p);
    EXPECT_EQ(got.loss, ref.loss) << "threads=" << threads;
    ExpectBitwiseEqual(got.dh, ref.dh, "dH");
    ExpectBitwiseEqual(got.dv, ref.dv, "dV");
  }
}

// ---------------------------------------------------------------------------
// Memory: the fused path never holds a full logits matrix
// ---------------------------------------------------------------------------

TEST(StreamingLossTest, PeakScratchStaysBelowFullLogits) {
  const std::size_t n = 64;
  const std::size_t num_items = 4096;
  const std::size_t d = 16;
  const LossProblem p = MakeProblem(n, num_items, d, 13);
  const std::size_t full_logits_bytes = n * num_items * sizeof(double);
  ScopedThreads t(4);
  ScopedScoreTile st(256);
  linalg::Workspace::ResetAllWorkspaces();
  Matrix dh;
  Matrix dv;
  StreamingSoftmaxCrossEntropy(p.h, p.v, p.targets, p.weights, &dh, &dv);
  const std::size_t peak = linalg::Workspace::GlobalPeakBytes();
  EXPECT_GT(peak, 0u);
  // The acceptance bar is "no (rows, num_items) allocation on the fused
  // path"; in aggregate the streaming scratch must stay well under half of
  // one full logits matrix even summed across every thread arena.
  EXPECT_LT(peak, full_logits_bytes / 2);
}

// ---------------------------------------------------------------------------
// Debug contracts (twin-binary semantics)
// ---------------------------------------------------------------------------

#if defined(WHITENREC_DEBUG_CHECKS) && WHITENREC_DEBUG_CHECKS

TEST(StreamingLossDeathTest, NonFiniteItemTableTripsFiniteCheck) {
  LossProblem p = MakeProblem(4, 60, 4, 17);
  p.v(10, 2) = std::numeric_limits<double>::infinity();
  Matrix dh;
  Matrix dv;
  EXPECT_DEATH(
      StreamingSoftmaxCrossEntropy(p.h, p.v, p.targets, p.weights, &dh, &dv),
      "WR_CHECK_FINITE failed");
}

#else  // !WHITENREC_DEBUG_CHECKS

TEST(StreamingLossTest, NonFiniteInputDoesNotAbortInRelease) {
  // The finite contract compiles out: the call must complete (the resulting
  // loss is garbage, but the process must not die).
  LossProblem p = MakeProblem(4, 60, 4, 17);
  p.v(10, 2) = std::numeric_limits<double>::infinity();
  Matrix dh;
  Matrix dv;
  const double loss =
      StreamingSoftmaxCrossEntropy(p.h, p.v, p.targets, p.weights, &dh, &dv);
  (void)loss;
  SUCCEED();
}

#endif  // WHITENREC_DEBUG_CHECKS

}  // namespace
}  // namespace nn
}  // namespace whitenrec
