// Cross-cutting tests: Status/Result plumbing, determinism properties,
// equivalences between transforms, and behavioural edge cases that do not
// belong to a single module's suite.

#include <cmath>

#include <gtest/gtest.h>

#include "core/status.h"
#include "whitening/whitening.h"
#include "data/generator.h"
#include "data/split.h"
#include "linalg/stats.h"
#include "seqrec/baselines.h"
#include "text/catalog.h"
#include "text/sim_plm.h"

namespace whitenrec {
namespace {

using linalg::Matrix;
using linalg::Rng;

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  const Status s = Status::NumericalError("cholesky blew up");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNumericalError);
  EXPECT_EQ(s.message(), "cholesky blew up");
  EXPECT_EQ(s.ToString(), "cholesky blew up");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(std::move(r).ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MutableValue) {
  Result<std::vector<int>> r(std::vector<int>{1});
  r.value().push_back(2);
  EXPECT_EQ(r.value().size(), 2u);
}

// ---------------------------------------------------------------------------
// Equivalences and invariances
// ---------------------------------------------------------------------------

TEST(EquivalenceTest, ZcaWithFullGroupsEqualsBatchNorm) {
  // Group whitening with G = d_t whitens each 1-wide group, which is exactly
  // per-dimension standardization (BN).
  Rng rng(1);
  Matrix x = rng.GaussianMatrix(200, 6, 1.0);
  for (std::size_t r = 0; r < x.rows(); ++r) x(r, 2) *= 7.0;
  auto grouped = WhitenMatrix(x, 6, WhiteningKind::kZca, 1e-9);
  auto bn = WhitenMatrix(x, 1, WhiteningKind::kBatchNorm, 1e-9);
  ASSERT_TRUE(grouped.ok());
  ASSERT_TRUE(bn.ok());
  for (std::size_t i = 0; i < grouped.value().size(); ++i) {
    EXPECT_NEAR(grouped.value().data()[i], bn.value().data()[i], 1e-9);
  }
}

TEST(EquivalenceTest, WhiteningInvariantToInputShift) {
  // Adding a constant vector to every row must not change the whitened
  // output (the transform centers first).
  Rng rng(2);
  const Matrix x = rng.GaussianMatrix(150, 4, 1.0);
  Matrix shifted = x;
  for (std::size_t r = 0; r < shifted.rows(); ++r) {
    double* row = shifted.RowPtr(r);
    for (std::size_t c = 0; c < 4; ++c) {
      row[c] += 100.0 * static_cast<double>(c + 1);
    }
  }
  auto z1 = WhitenMatrix(x, 1, WhiteningKind::kZca, 1e-8);
  auto z2 = WhitenMatrix(shifted, 1, WhiteningKind::kZca, 1e-8);
  ASSERT_TRUE(z1.ok());
  ASSERT_TRUE(z2.ok());
  for (std::size_t i = 0; i < z1.value().size(); ++i) {
    EXPECT_NEAR(z1.value().data()[i], z2.value().data()[i], 1e-6);
  }
}

TEST(EquivalenceTest, ZcaInvariantToInputScale) {
  // Scaling the whole input by a constant leaves ZCA output unchanged.
  Rng rng(3);
  const Matrix x = rng.GaussianMatrix(150, 4, 1.0);
  const Matrix scaled = linalg::Scale(x, 17.0);
  auto z1 = WhitenMatrix(x, 1, WhiteningKind::kZca, 1e-12);
  auto z2 = WhitenMatrix(scaled, 1, WhiteningKind::kZca, 1e-12);
  ASSERT_TRUE(z1.ok());
  ASSERT_TRUE(z2.ok());
  for (std::size_t i = 0; i < z1.value().size(); ++i) {
    EXPECT_NEAR(z1.value().data()[i], z2.value().data()[i], 1e-5);
  }
}

class WhitenDeterminismTest : public ::testing::TestWithParam<WhiteningKind> {};

TEST_P(WhitenDeterminismTest, SameInputSameOutput) {
  Rng rng(4);
  const Matrix x = rng.GaussianMatrix(100, 5, 1.0);
  auto z1 = WhitenMatrix(x, 1, GetParam());
  auto z2 = WhitenMatrix(x, 1, GetParam());
  ASSERT_TRUE(z1.ok());
  ASSERT_TRUE(z2.ok());
  for (std::size_t i = 0; i < z1.value().size(); ++i) {
    EXPECT_DOUBLE_EQ(z1.value().data()[i], z2.value().data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, WhitenDeterminismTest,
                         ::testing::Values(WhiteningKind::kZca,
                                           WhiteningKind::kPca,
                                           WhiteningKind::kCholesky,
                                           WhiteningKind::kBatchNorm));

// ---------------------------------------------------------------------------
// End-to-end determinism
// ---------------------------------------------------------------------------

const data::GeneratedData& TinyData() {
  static const data::GeneratedData* data = [] {
    data::DatasetProfile p = data::ArtsProfile(0.3);
    p.plm.embed_dim = 16;
    p.plm.calibration_iters = 15;
    return new data::GeneratedData(data::GenerateDataset(p));
  }();
  return *data;
}

seqrec::SasRecConfig TinyConfig() {
  seqrec::SasRecConfig config;
  config.hidden_dim = 16;
  config.num_blocks = 1;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.dropout = 0.1;
  config.max_len = 8;
  return config;
}

TEST(DeterminismTest, TrainingIsReproducibleFromSeed) {
  const data::Dataset& ds = TinyData().dataset;
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig tc;
  tc.epochs = 3;
  auto run = [&]() {
    auto rec = seqrec::MakeSasRecId(ds, TinyConfig());
    rec->Fit(split, tc);
    return seqrec::EvaluateRanking(rec.get(), split.test, split.train, 8);
  };
  const seqrec::EvalResult a = run();
  const seqrec::EvalResult b = run();
  EXPECT_DOUBLE_EQ(a.recall20, b.recall20);
  EXPECT_DOUBLE_EQ(a.ndcg20, b.ndcg20);
}

TEST(DeterminismTest, DifferentSeedsGiveDifferentModels) {
  const data::Dataset& ds = TinyData().dataset;
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig tc;
  tc.epochs = 2;
  seqrec::SasRecConfig c1 = TinyConfig();
  seqrec::SasRecConfig c2 = TinyConfig();
  c2.seed = 777;
  auto r1 = seqrec::MakeSasRecId(ds, c1);
  auto r2 = seqrec::MakeSasRecId(ds, c2);
  r1->Fit(split, tc);
  r2->Fit(split, tc);
  const auto e1 =
      seqrec::EvaluateRanking(r1.get(), split.test, split.train, 8);
  const auto e2 =
      seqrec::EvaluateRanking(r2.get(), split.test, split.train, 8);
  // Equality of every metric across seeds would indicate the seed is dead.
  EXPECT_FALSE(e1.recall20 == e2.recall20 && e1.ndcg20 == e2.ndcg20 &&
               e1.recall50 == e2.recall50 && e1.ndcg50 == e2.ndcg50);
}

TEST(DeterminismTest, SimPlmEncodingIsStablePerDocument) {
  // Re-encoding the same tokens (e.g. a cold item arriving later) must give
  // the identical embedding — including the hash-derived corpus noise.
  const data::GeneratedData& gen = TinyData();
  data::DatasetProfile p = data::ArtsProfile(0.3);
  p.plm.embed_dim = 16;
  p.plm.calibration_iters = 15;
  linalg::Rng rng(p.seed);
  const text::Catalog catalog = text::GenerateCatalog(p.catalog, &rng);
  text::SimPlm plm(catalog, p.plm, &rng);
  const Matrix once = plm.Encode({catalog.items[0].tokens});
  const Matrix twice = plm.Encode({catalog.items[0].tokens});
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_DOUBLE_EQ(once.data()[i], twice.data()[i]);
  }
  (void)gen;
}

// ---------------------------------------------------------------------------
// Trainer behaviours
// ---------------------------------------------------------------------------

TEST(TrainerBehaviourTest, WeightDecayShrinksParameterNorm) {
  const data::Dataset& ds = TinyData().dataset;
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig plain;
  plain.epochs = 4;
  plain.restore_best = false;
  seqrec::TrainConfig decayed = plain;
  decayed.weight_decay = 0.1;

  auto norm_after = [&](const seqrec::TrainConfig& tc) {
    auto rec = seqrec::MakeSasRecId(ds, TinyConfig());
    rec->Fit(split, tc);
    double norm = 0.0;
    for (nn::Parameter* p : rec->model()->Parameters()) {
      norm += p->value.FrobeniusNorm();
    }
    return norm;
  };
  EXPECT_LT(norm_after(decayed), norm_after(plain));
}

TEST(TrainerBehaviourTest, RestoreBestKeepsValidationMetric) {
  // With restore_best, evaluating the validation set after Fit reproduces
  // (at least) the best recorded N@20.
  const data::Dataset& ds = TinyData().dataset;
  const data::Split split = data::LeaveOneOutSplit(ds);
  auto rec = seqrec::MakeSasRecId(ds, TinyConfig());
  seqrec::TrainConfig tc;
  tc.epochs = 6;
  tc.restore_best = true;
  const seqrec::TrainResult& result = rec->Fit(split, tc);
  const double after = seqrec::ValidationNdcg20(rec.get(), split.valid,
                                                split.train, 8);
  EXPECT_NEAR(after, result.best_valid_ndcg20, 1e-9);
}

TEST(TrainerBehaviourTest, MoreEpochsNeverHurtBestValidation) {
  const data::Dataset& ds = TinyData().dataset;
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig short_tc;
  short_tc.epochs = 2;
  short_tc.patience = 99;
  seqrec::TrainConfig long_tc = short_tc;
  long_tc.epochs = 6;
  auto a = seqrec::MakeSasRecId(ds, TinyConfig());
  auto b = seqrec::MakeSasRecId(ds, TinyConfig());
  const double best_short = a->Fit(split, short_tc).best_valid_ndcg20;
  const double best_long = b->Fit(split, long_tc).best_valid_ndcg20;
  // Identical seeds: the long run revisits the short run's epochs first.
  EXPECT_GE(best_long + 1e-12, best_short);
}

// ---------------------------------------------------------------------------
// Headline behaviour on the tiny profile
// ---------------------------------------------------------------------------

TEST(HeadlineTest, WhitenRecBeatsRawTextModel) {
  // The paper's Table I direction, checked end-to-end. The 16-dim tiny
  // profile is too benign for a reliable gap, so this test uses a 32-dim
  // profile with stronger correlated corpus noise — the regime the paper's
  // finding is about.
  data::DatasetProfile p = data::ArtsProfile(0.35);
  p.plm.embed_dim = 32;
  p.plm.calibration_iters = 15;
  p.plm.corpus_noise_scale = 3.0;
  const data::GeneratedData gen = data::GenerateDataset(p);
  const data::Dataset& ds = gen.dataset;
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig tc;
  tc.epochs = 8;
  auto text = seqrec::MakeSasRecText(ds, TinyConfig());
  text->Fit(split, tc);
  WhitenRecConfig wc;
  auto whiten = seqrec::MakeWhitenRec(ds, TinyConfig(), wc);
  whiten->Fit(split, tc);
  const auto rt =
      seqrec::EvaluateRanking(text.get(), split.test, split.train, 8);
  const auto rw =
      seqrec::EvaluateRanking(whiten.get(), split.test, split.train, 8);
  EXPECT_GT(rw.ndcg20, rt.ndcg20);
}

TEST(HeadlineTest, WhitenedFeaturesAreIsotropicEndToEnd) {
  const data::Dataset& ds = TinyData().dataset;
  Rng m1(1), m2(2);
  const double raw_cos =
      linalg::MeanPairwiseCosine(ds.text_embeddings, &m1);
  auto z = WhitenMatrix(ds.text_embeddings, 1, WhiteningKind::kZca);
  ASSERT_TRUE(z.ok());
  const double white_cos = linalg::MeanPairwiseCosine(z.value(), &m2);
  EXPECT_GT(raw_cos, 0.7);
  EXPECT_LT(std::fabs(white_cos), 0.15);
}

// ---------------------------------------------------------------------------
// Idempotence of evaluation paths (guards against stale forward caches)
// ---------------------------------------------------------------------------

TEST(IdempotenceTest, SasRecScoringIsRepeatable) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = seqrec::MakeWhitenRecPlus(ds, TinyConfig(), WhitenRecConfig{});
  const data::Split split = data::LeaveOneOutSplit(ds);
  const auto batches = data::MakeEvalBatches(split.valid, 8, 16);
  const Matrix a = rec->ScoreLastPositions(batches[0]);
  const Matrix b = rec->ScoreLastPositions(batches[0]);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
}

TEST(IdempotenceTest, EvaluationAfterTrainingIsRepeatable) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = seqrec::MakeSasRecText(ds, TinyConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  seqrec::TrainConfig tc;
  tc.epochs = 2;
  rec->Fit(split, tc);
  const auto r1 = seqrec::EvaluateRanking(rec.get(), split.test, split.train, 8);
  const auto r2 = seqrec::EvaluateRanking(rec.get(), split.test, split.train, 8);
  EXPECT_DOUBLE_EQ(r1.recall20, r2.recall20);
  EXPECT_DOUBLE_EQ(r1.ndcg50, r2.ndcg50);
}

// ---------------------------------------------------------------------------
// Generator invariants
// ---------------------------------------------------------------------------

TEST(GeneratorInvariantTest, SequencesRespectMaxLen) {
  const data::GeneratedData& gen = TinyData();
  const data::DatasetProfile reference = data::ArtsProfile(0.3);
  for (const auto& seq : gen.dataset.sequences) {
    EXPECT_LE(seq.size(), reference.max_len);
  }
}

TEST(GeneratorInvariantTest, FoodTextsShorterThanArts) {
  // Paper Sec. V-E: Food descriptions average 3.8 words vs 20.5 for Amazon.
  linalg::Rng rng1(1), rng2(1);
  data::DatasetProfile arts = data::ArtsProfile(0.3);
  data::DatasetProfile food = data::FoodProfile(0.6);
  const text::Catalog ca = text::GenerateCatalog(arts.catalog, &rng1);
  const text::Catalog cf = text::GenerateCatalog(food.catalog, &rng2);
  auto mean_tokens = [](const text::Catalog& c) {
    double total = 0.0;
    for (const auto& item : c.items) {
      total += static_cast<double>(item.tokens.size());
    }
    return total / static_cast<double>(c.items.size());
  };
  EXPECT_LT(mean_tokens(cf), mean_tokens(ca));
}

TEST(GeneratorInvariantTest, PairwiseCosinesDeterministicGivenSeed) {
  Rng data_rng(5);
  const Matrix x = data_rng.GaussianMatrix(60, 8, 1.0);
  Rng a(3), b(3);
  EXPECT_EQ(linalg::PairwiseCosines(x, &a, 100),
            linalg::PairwiseCosines(x, &b, 100));
}

}  // namespace
}  // namespace whitenrec
