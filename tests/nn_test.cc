#include <cmath>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "grad_check.h"
#include "linalg/rng.h"
#include "nn/attention.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "nn/transformer.h"

namespace whitenrec {
namespace nn {
namespace {

using linalg::Matrix;
using linalg::Rng;
using ::whitenrec::testing::MaxInputGradError;
using ::whitenrec::testing::MaxParamGradError;
using ::whitenrec::testing::WeightedSum;

constexpr double kGradTol = 1e-4;

// ---------------------------------------------------------------------------
// Tensor kernels
// ---------------------------------------------------------------------------

TEST(TensorTest, RowSoftmaxSumsToOne) {
  Rng rng(1);
  Matrix m = rng.GaussianMatrix(5, 7, 3.0);
  RowSoftmaxInPlace(&m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_GT(m(r, c), 0.0);
      sum += m(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(TensorTest, RowSoftmaxHandlesLargeLogits) {
  Matrix m = Matrix::FromRows({{1000.0, 1001.0}});
  RowSoftmaxInPlace(&m);
  EXPECT_NEAR(m(0, 0) + m(0, 1), 1.0, 1e-12);
  EXPECT_GT(m(0, 1), m(0, 0));
}

TEST(TensorTest, SoftmaxBackwardRowSumsToZero) {
  // Softmax Jacobian rows are orthogonal to the all-ones vector.
  Matrix p = Matrix::FromRows({{0.2, 0.3, 0.5}});
  const double dp[] = {1.0, -2.0, 0.7};
  double ds[3];
  SoftmaxBackwardRow(p.RowPtr(0), dp, 3, ds);
  EXPECT_NEAR(ds[0] + ds[1] + ds[2], 0.0, 1e-12);
}

TEST(TensorTest, ColumnSum) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  const std::vector<double> s = ColumnSum(m);
  EXPECT_DOUBLE_EQ(s[0], 4.0);
  EXPECT_DOUBLE_EQ(s[1], 6.0);
}

TEST(TensorTest, RowL2Normalize) {
  Matrix m = Matrix::FromRows({{3, 4}, {0, 0}});
  RowL2NormalizeInPlace(&m);
  EXPECT_NEAR(m(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(m(0, 1), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);  // zero row untouched
}

TEST(TensorTest, GatherScatterRoundTrip) {
  const Matrix table = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  const std::vector<std::size_t> idx = {2, 0, 2};
  const Matrix gathered = GatherRows(table, idx);
  EXPECT_DOUBLE_EQ(gathered(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(gathered(1, 1), 2.0);

  Matrix grad(3, 2);
  ScatterAddRows(gathered, idx, &grad);
  // Row 2 receives two contributions of (5,6).
  EXPECT_DOUBLE_EQ(grad(2, 0), 10.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(grad(1, 0), 0.0);
}

// ---------------------------------------------------------------------------
// Layer gradient checks
// ---------------------------------------------------------------------------

TEST(LinearTest, ForwardKnownValues) {
  Rng rng(2);
  Linear fc(2, 2, &rng);
  fc.weight().value = Matrix::FromRows({{1, 0}, {0, 2}});
  fc.bias().value = Matrix::FromRows({{10, 20}});
  const Matrix y = fc.Forward(Matrix::FromRows({{3, 4}}));
  EXPECT_DOUBLE_EQ(y(0, 0), 13.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 28.0);
}

TEST(LinearTest, GradCheck) {
  Rng rng(3);
  Linear fc(4, 3, &rng);
  Matrix x = rng.GaussianMatrix(5, 4, 1.0);
  const Matrix w = rng.GaussianMatrix(5, 3, 1.0);

  const Matrix out = fc.Forward(x);
  fc.weight().ZeroGrad();
  fc.bias().ZeroGrad();
  const Matrix dx = fc.Backward(w);

  auto loss = [&]() { return WeightedSum(fc.Forward(x), w); };
  EXPECT_LT(MaxParamGradError(&fc.weight(), fc.weight().grad, loss), kGradTol);
  EXPECT_LT(MaxParamGradError(&fc.bias(), fc.bias().grad, loss), kGradTol);
  EXPECT_LT(MaxInputGradError(&x, dx, loss), kGradTol);
  (void)out;
}

TEST(ReLUTest, ForwardClampsNegative) {
  ReLU relu;
  const Matrix y = relu.Forward(Matrix::FromRows({{-1, 2}, {0, -3}}));
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(y(1, 1), 0.0);
}

TEST(ReLUTest, GradCheck) {
  Rng rng(4);
  ReLU relu;
  // Keep activations away from the kink for finite differences.
  Matrix x = rng.GaussianMatrix(4, 5, 1.0);
  for (std::size_t i = 0; i < x.size(); ++i)
    if (std::fabs(x.data()[i]) < 0.05) x.data()[i] = 0.2;
  const Matrix w = rng.GaussianMatrix(4, 5, 1.0);
  relu.Forward(x);
  const Matrix dx = relu.Backward(w);
  auto loss = [&]() { return WeightedSum(relu.Forward(x), w); };
  EXPECT_LT(MaxInputGradError(&x, dx, loss), kGradTol);
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(5);
  Dropout drop(0.5, &rng);
  const Matrix x = rng.GaussianMatrix(3, 3, 1.0);
  const Matrix y = drop.Forward(x, /*train=*/false);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_DOUBLE_EQ(y.data()[i], x.data()[i]);
}

TEST(DropoutTest, TrainModePreservesExpectation) {
  Rng rng(6);
  Dropout drop(0.3, &rng);
  const Matrix x(200, 50, 1.0);
  const Matrix y = drop.Forward(x, /*train=*/true);
  double mean = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) mean += y.data()[i];
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(mean, 1.0, 0.05);  // inverted dropout keeps the expectation
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(7);
  Dropout drop(0.4, &rng);
  const Matrix x(4, 4, 1.0);
  const Matrix y = drop.Forward(x, /*train=*/true);
  const Matrix dy(4, 4, 1.0);
  const Matrix dx = drop.Backward(dy);
  for (std::size_t i = 0; i < y.size(); ++i) {
    // Gradient passes exactly where the activation passed.
    EXPECT_DOUBLE_EQ(dx.data()[i], y.data()[i]);
  }
}

TEST(LayerNormTest, OutputNormalized) {
  Rng rng(8);
  LayerNorm ln(6);
  const Matrix x = rng.GaussianMatrix(3, 6, 5.0);
  const Matrix y = ln.Forward(x);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    double mean = 0.0, var = 0.0;
    for (std::size_t c = 0; c < 6; ++c) mean += y(r, c);
    mean /= 6.0;
    for (std::size_t c = 0; c < 6; ++c)
      var += (y(r, c) - mean) * (y(r, c) - mean);
    var /= 6.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-6);
  }
}

TEST(LayerNormTest, GradCheck) {
  Rng rng(9);
  LayerNorm ln(4);
  // Non-trivial gamma/beta.
  ln.gamma().value = rng.GaussianMatrix(1, 4, 1.0);
  ln.beta().value = rng.GaussianMatrix(1, 4, 1.0);
  Matrix x = rng.GaussianMatrix(3, 4, 1.0);
  const Matrix w = rng.GaussianMatrix(3, 4, 1.0);
  ln.Forward(x);
  ln.gamma().ZeroGrad();
  ln.beta().ZeroGrad();
  const Matrix dx = ln.Backward(w);
  auto loss = [&]() { return WeightedSum(ln.Forward(x), w); };
  EXPECT_LT(MaxParamGradError(&ln.gamma(), ln.gamma().grad, loss), kGradTol);
  EXPECT_LT(MaxParamGradError(&ln.beta(), ln.beta().grad, loss), kGradTol);
  EXPECT_LT(MaxInputGradError(&x, dx, loss), kGradTol);
}

TEST(EmbeddingTest, GradCheck) {
  Rng rng(10);
  Embedding emb(6, 3, &rng);
  const std::vector<std::size_t> idx = {1, 4, 1, 0};
  const Matrix w = rng.GaussianMatrix(4, 3, 1.0);
  emb.Forward(idx);
  emb.table().ZeroGrad();
  emb.Backward(w);
  auto loss = [&]() { return WeightedSum(emb.Forward(idx), w); };
  EXPECT_LT(MaxParamGradError(&emb.table(), emb.table().grad, loss), kGradTol);
}

TEST(AttentionTest, CausalityHoldsInForward) {
  // Changing a later input must not affect earlier outputs.
  Rng rng(11);
  MultiHeadSelfAttention attn(8, 2, &rng);
  Matrix x = rng.GaussianMatrix(6, 8, 1.0);  // batch=1, L=6
  const Matrix y1 = attn.Forward(x, 1, 6);
  x(5, 3) += 10.0;  // perturb the last position only
  const Matrix y2 = attn.Forward(x, 1, 6);
  for (std::size_t t = 0; t < 5; ++t)
    for (std::size_t c = 0; c < 8; ++c)
      EXPECT_NEAR(y1(t, c), y2(t, c), 1e-12) << "position " << t;
}

TEST(AttentionTest, GradCheckInput) {
  Rng rng(12);
  MultiHeadSelfAttention attn(4, 2, &rng);
  Matrix x = rng.GaussianMatrix(6, 4, 0.7);  // batch=2, L=3
  const Matrix w = rng.GaussianMatrix(6, 4, 1.0);
  attn.Forward(x, 2, 3);
  std::vector<Parameter*> params;
  attn.CollectParameters(&params);
  for (Parameter* p : params) p->ZeroGrad();
  const Matrix dx = attn.Backward(w);
  auto loss = [&]() { return WeightedSum(attn.Forward(x, 2, 3), w); };
  EXPECT_LT(MaxInputGradError(&x, dx, loss), kGradTol);
}

TEST(AttentionTest, GradCheckParameters) {
  Rng rng(13);
  MultiHeadSelfAttention attn(4, 1, &rng);
  Matrix x = rng.GaussianMatrix(4, 4, 0.7);  // batch=1, L=4
  const Matrix w = rng.GaussianMatrix(4, 4, 1.0);
  attn.Forward(x, 1, 4);
  std::vector<Parameter*> params;
  attn.CollectParameters(&params);
  for (Parameter* p : params) p->ZeroGrad();
  attn.Backward(w);
  auto loss = [&]() { return WeightedSum(attn.Forward(x, 1, 4), w); };
  for (Parameter* p : params) {
    EXPECT_LT(MaxParamGradError(p, p->grad, loss), kGradTol) << p->name;
  }
}

TEST(FeedForwardTest, GradCheck) {
  Rng rng(14);
  FeedForward ffn(3, 5, &rng);
  Matrix x = rng.GaussianMatrix(4, 3, 1.0);
  const Matrix w = rng.GaussianMatrix(4, 3, 1.0);
  ffn.Forward(x);
  std::vector<Parameter*> params;
  ffn.CollectParameters(&params);
  for (Parameter* p : params) p->ZeroGrad();
  const Matrix dx = ffn.Backward(w);
  auto loss = [&]() { return WeightedSum(ffn.Forward(x), w); };
  EXPECT_LT(MaxInputGradError(&x, dx, loss), kGradTol);
  for (Parameter* p : params) {
    EXPECT_LT(MaxParamGradError(p, p->grad, loss), kGradTol) << p->name;
  }
}

TEST(TransformerBlockTest, GradCheckInput) {
  Rng rng(15);
  TransformerBlock block(4, 2, 8, /*dropout=*/0.0, &rng);
  Matrix x = rng.GaussianMatrix(6, 4, 0.7);  // batch=2, L=3
  const Matrix w = rng.GaussianMatrix(6, 4, 1.0);
  block.Forward(x, 2, 3, /*train=*/false);
  std::vector<Parameter*> params;
  block.CollectParameters(&params);
  for (Parameter* p : params) p->ZeroGrad();
  const Matrix dx = block.Backward(w);
  auto loss = [&]() {
    return WeightedSum(block.Forward(x, 2, 3, false), w);
  };
  EXPECT_LT(MaxInputGradError(&x, dx, loss), kGradTol);
}

TEST(TransformerEncoderTest, GradCheckInputAndSomeParams) {
  Rng rng(16);
  TransformerEncoder enc(4, 2, 2, 8, /*dropout=*/0.0, &rng);
  Matrix x = rng.GaussianMatrix(4, 4, 0.7);  // batch=1, L=4
  const Matrix w = rng.GaussianMatrix(4, 4, 1.0);
  enc.Forward(x, 1, 4, false);
  std::vector<Parameter*> params;
  enc.CollectParameters(&params);
  for (Parameter* p : params) p->ZeroGrad();
  const Matrix dx = enc.Backward(w);
  auto loss = [&]() { return WeightedSum(enc.Forward(x, 1, 4, false), w); };
  EXPECT_LT(MaxInputGradError(&x, dx, loss), kGradTol);
  // Check a subset of parameters (full sweep is slow on one core).
  for (std::size_t i = 0; i < params.size(); i += 5) {
    EXPECT_LT(MaxParamGradError(params[i], params[i]->grad, loss), kGradTol)
        << params[i]->name;
  }
}

TEST(TransformerEncoderTest, CausalityAcrossBlocks) {
  Rng rng(17);
  TransformerEncoder enc(8, 2, 2, 16, 0.0, &rng);
  Matrix x = rng.GaussianMatrix(5, 8, 1.0);
  const Matrix y1 = enc.Forward(x, 1, 5, false);
  x(4, 0) += 3.0;
  const Matrix y2 = enc.Forward(x, 1, 5, false);
  for (std::size_t t = 0; t < 4; ++t)
    for (std::size_t c = 0; c < 8; ++c) EXPECT_NEAR(y1(t, c), y2(t, c), 1e-10);
}

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

TEST(LossTest, CrossEntropyUniformLogits) {
  const Matrix logits(2, 4);  // all-zero logits: p = 1/4 each
  const std::vector<std::size_t> targets = {0, 3};
  Matrix dlogits;
  const double loss = SoftmaxCrossEntropy(logits, targets, &dlogits);
  EXPECT_NEAR(loss, std::log(4.0), 1e-12);
}

TEST(LossTest, CrossEntropyPerfectPrediction) {
  Matrix logits(1, 3);
  logits(0, 1) = 100.0;
  Matrix dlogits;
  const double loss = SoftmaxCrossEntropy(logits, {1}, &dlogits);
  EXPECT_NEAR(loss, 0.0, 1e-9);
}

TEST(LossTest, CrossEntropyMaskedRowsIgnored) {
  Rng rng(18);
  Matrix logits = rng.GaussianMatrix(3, 4, 2.0);
  Matrix dlogits;
  // Row 1 masked out: loss equals the 2-row computation.
  const double masked = SoftmaxCrossEntropy(logits, {0, 1, 2}, {1, 0, 1},
                                            &dlogits);
  for (std::size_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(dlogits(1, c), 0.0);

  Matrix two_rows(2, 4);
  two_rows.SetRow(0, logits.Row(0));
  two_rows.SetRow(1, logits.Row(2));
  Matrix d2;
  const double expected = SoftmaxCrossEntropy(two_rows, {0, 2}, &d2);
  EXPECT_NEAR(masked, expected, 1e-12);
}

TEST(LossTest, CrossEntropyGradCheck) {
  Rng rng(19);
  Matrix logits = rng.GaussianMatrix(3, 5, 1.0);
  const std::vector<std::size_t> targets = {2, 0, 4};
  const std::vector<double> weights = {1.0, 0.5, 1.0};
  Matrix dlogits;
  SoftmaxCrossEntropy(logits, targets, weights, &dlogits);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    auto loss = [&]() {
      Matrix d;
      return SoftmaxCrossEntropy(logits, targets, weights, &d);
    };
    const double numeric =
        whitenrec::testing::NumericalDerivative(loss, logits.data() + i);
    EXPECT_NEAR(numeric, dlogits.data()[i], 1e-6);
  }
}

TEST(LossTest, CrossEntropyGradientRowsSumToZero) {
  Rng rng(20);
  const Matrix logits = rng.GaussianMatrix(4, 6, 1.0);
  Matrix dlogits;
  SoftmaxCrossEntropy(logits, {0, 1, 2, 3}, &dlogits);
  for (std::size_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 6; ++c) sum += dlogits(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(LossTest, InfoNceIdenticalViewsLowLoss) {
  Rng rng(21);
  const Matrix a = rng.GaussianMatrix(8, 4, 1.0);
  Matrix da, db;
  const double loss_same = InfoNce(a, a, 0.1, &da, &db);
  const Matrix b = rng.GaussianMatrix(8, 4, 1.0);
  const double loss_diff = InfoNce(a, b, 0.1, &da, &db);
  EXPECT_LT(loss_same, loss_diff);
}

TEST(LossTest, InfoNceGradCheck) {
  Rng rng(22);
  Matrix a = rng.GaussianMatrix(4, 3, 1.0);
  Matrix b = rng.GaussianMatrix(4, 3, 1.0);
  Matrix da, db;
  InfoNce(a, b, 0.5, &da, &db);
  auto loss = [&]() {
    Matrix x, y;
    return InfoNce(a, b, 0.5, &x, &y);
  };
  EXPECT_LT(MaxInputGradError(&a, da, loss), kGradTol);
  EXPECT_LT(MaxInputGradError(&b, db, loss), kGradTol);
}

TEST(LossTest, BprLossDecreasesWithMargin) {
  std::vector<double> dpos, dneg;
  const double high = BprLoss({0.0}, {0.0}, &dpos, &dneg);
  const double low = BprLoss({5.0}, {0.0}, &dpos, &dneg);
  EXPECT_GT(high, low);
  EXPECT_NEAR(high, std::log(2.0), 1e-12);
}

TEST(LossTest, BprGradientSigns) {
  std::vector<double> dpos, dneg;
  BprLoss({1.0}, {0.5}, &dpos, &dneg);
  EXPECT_LT(dpos[0], 0.0);  // increasing pos score reduces loss
  EXPECT_GT(dneg[0], 0.0);
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize f(w) = sum (w - 3)^2.
  Parameter w("w", Matrix(1, 4));
  Adam::Options opts;
  opts.learning_rate = 0.1;
  opts.clip_norm = 0.0;
  Adam adam({&w}, opts);
  for (int step = 0; step < 500; ++step) {
    for (std::size_t i = 0; i < 4; ++i)
      w.grad(0, i) = 2.0 * (w.value(0, i) - 3.0);
    adam.Step();
  }
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(w.value(0, i), 3.0, 1e-3);
}

TEST(AdamTest, StepZeroesGradients) {
  Parameter w("w", Matrix(1, 2));
  Adam adam({&w}, Adam::Options{});
  w.grad(0, 0) = 1.0;
  adam.Step();
  EXPECT_DOUBLE_EQ(w.grad(0, 0), 0.0);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Parameter w("w", Matrix(1, 1, 10.0));
  Adam::Options opts;
  opts.learning_rate = 0.01;
  opts.weight_decay = 0.1;
  Adam adam({&w}, opts);
  // Zero task gradient: only decay acts.
  for (int i = 0; i < 100; ++i) adam.Step();
  EXPECT_LT(w.value(0, 0), 10.0);
}

TEST(AdamTest, ClippingBoundsUpdate) {
  Parameter w("w", Matrix(1, 1));
  Adam::Options opts;
  opts.learning_rate = 1.0;
  opts.clip_norm = 1.0;
  Adam adam({&w}, opts);
  w.grad(0, 0) = 1e6;  // huge gradient gets clipped to norm 1
  adam.Step();
  EXPECT_LT(std::fabs(w.value(0, 0)), 2.0);
}

TEST(AdamTest, NumParameters) {
  Parameter a("a", Matrix(2, 3));
  Parameter b("b", Matrix(1, 4));
  Adam adam({&a, &b}, Adam::Options{});
  EXPECT_EQ(adam.NumParameters(), 10u);
}

// ---------------------------------------------------------------------------
// Multi-threaded gradient checks
// ---------------------------------------------------------------------------
// The grad checks above run at whatever WHITENREC_THREADS selects (usually
// serial). These repeat the attention-backward and full-softmax checks with
// the pool forced wide enough that the (batch x head) and batch-row chunking
// actually splits, verifying the parallel backward paths analytically.

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : saved_(core::NumThreads()) {
    core::SetNumThreads(n);
  }
  ~ScopedThreads() { core::SetNumThreads(saved_); }

 private:
  std::size_t saved_;
};

TEST(AttentionTest, GradCheckInputMultiThreaded) {
  ScopedThreads guard(4);
  Rng rng(31);
  MultiHeadSelfAttention attn(4, 2, &rng);
  Matrix x = rng.GaussianMatrix(9, 4, 0.7);  // batch=3, L=3 -> 6 (b,h) pairs
  const Matrix w = rng.GaussianMatrix(9, 4, 1.0);
  attn.Forward(x, 3, 3);
  std::vector<Parameter*> params;
  attn.CollectParameters(&params);
  for (Parameter* p : params) p->ZeroGrad();
  const Matrix dx = attn.Backward(w);
  auto loss = [&]() { return WeightedSum(attn.Forward(x, 3, 3), w); };
  EXPECT_LT(MaxInputGradError(&x, dx, loss), kGradTol);
}

TEST(AttentionTest, GradCheckParametersMultiThreaded) {
  ScopedThreads guard(4);
  Rng rng(32);
  MultiHeadSelfAttention attn(4, 2, &rng);
  Matrix x = rng.GaussianMatrix(6, 4, 0.7);  // batch=2, L=3 -> 4 (b,h) pairs
  const Matrix w = rng.GaussianMatrix(6, 4, 1.0);
  attn.Forward(x, 2, 3);
  std::vector<Parameter*> params;
  attn.CollectParameters(&params);
  for (Parameter* p : params) p->ZeroGrad();
  attn.Backward(w);
  auto loss = [&]() { return WeightedSum(attn.Forward(x, 2, 3), w); };
  for (Parameter* p : params) {
    EXPECT_LT(MaxParamGradError(p, p->grad, loss), kGradTol) << p->name;
  }
}

TEST(LossTest, CrossEntropyGradCheckMultiThreaded) {
  ScopedThreads guard(4);
  Rng rng(33);
  // Wide enough that GrainForWork splits the 48 rows into several chunks, so
  // the parallel softmax + gradient fill is genuinely exercised.
  Matrix logits = rng.GaussianMatrix(48, 400, 1.0);
  std::vector<std::size_t> targets(48);
  std::vector<double> weights(48, 1.0);
  for (std::size_t r = 0; r < 48; ++r) targets[r] = (r * 53) % 400;
  weights[5] = 0.0;  // keep a masked row in the mix
  weights[17] = 0.5;
  Matrix dlogits;
  SoftmaxCrossEntropy(logits, targets, weights, &dlogits);
  auto loss = [&]() {
    Matrix d;
    return SoftmaxCrossEntropy(logits, targets, weights, &d);
  };
  // Finite differences over a strided sample of locations (a full sweep of
  // 48 x 400 is too slow for tier-1).
  for (std::size_t i = 0; i < logits.size(); i += 97) {
    const double numeric =
        whitenrec::testing::NumericalDerivative(loss, logits.data() + i);
    EXPECT_NEAR(numeric, dlogits.data()[i], 1e-6) << "flat index " << i;
  }
}

TEST(LossTest, CrossEntropyBitwiseStableAcrossThreadCounts) {
  Rng rng(34);
  Matrix logits = rng.GaussianMatrix(64, 300, 2.0);
  std::vector<std::size_t> targets(64);
  for (std::size_t r = 0; r < 64; ++r) targets[r] = (r * 7) % 300;
  std::vector<double> losses;
  std::vector<Matrix> grads;
  for (std::size_t t : {1u, 2u, 8u}) {
    ScopedThreads guard(t);
    Matrix d;
    losses.push_back(SoftmaxCrossEntropy(logits, targets, &d));
    grads.push_back(std::move(d));
  }
  for (std::size_t v = 1; v < losses.size(); ++v) {
    EXPECT_EQ(losses[0], losses[v]);
    for (std::size_t i = 0; i < grads[0].size(); ++i) {
      ASSERT_EQ(grads[0].data()[i], grads[v].data()[i]) << "flat " << i;
    }
  }
}

}  // namespace
}  // namespace nn
}  // namespace whitenrec
