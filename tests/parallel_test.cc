// Unit tests for the thread-pool substrate (core/parallel.h): pool
// lifecycle, exception propagation, nested submits, and the static-chunking
// edge cases ParallelFor must handle (empty range, range < threads,
// grain > range). These run under check-tsan as well.

#include "core/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace whitenrec {
namespace core {
namespace {

// Restores the process-wide thread count on scope exit so tests do not leak
// their setting into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : saved_(NumThreads()) {
    SetNumThreads(n);
  }
  ~ScopedThreads() { SetNumThreads(saved_); }

 private:
  std::size_t saved_;
};

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, StartupAndShutdown) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  // Destruction with an empty queue must join cleanly (checked by running).
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is consumed: a subsequent Wait with healthy tasks succeeds.
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &count] {
      count.fetch_add(1);
      pool.Submit([&count] { count.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, WorkerThreadsAreMarked) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  ThreadPool pool(1);
  std::atomic<bool> marked{false};
  pool.Submit([&marked] { marked = ThreadPool::InWorkerThread(); });
  pool.Wait();
  EXPECT_TRUE(marked.load());
}

// ---------------------------------------------------------------------------
// Thread configuration
// ---------------------------------------------------------------------------

TEST(ThreadConfigTest, SetAndGet) {
  ScopedThreads guard(3);
  EXPECT_EQ(NumThreads(), 3u);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1u);
}

TEST(ThreadConfigTest, ZeroSelectsHardwareConcurrency) {
  ScopedThreads guard(2);
  SetNumThreads(0);
  EXPECT_GE(NumThreads(), 1u);
}

// ---------------------------------------------------------------------------
// ParallelFor
// ---------------------------------------------------------------------------

// Every index in [begin, end) must be visited exactly once, whatever the
// grain/thread combination.
void ExpectFullCoverage(std::size_t begin, std::size_t end, std::size_t grain,
                        std::size_t threads) {
  ScopedThreads guard(threads);
  std::vector<std::atomic<int>> visits(end);
  for (auto& v : visits) v = 0;
  ParallelFor(begin, end, grain, [&](std::size_t i0, std::size_t i1) {
    EXPECT_LE(i0, i1);
    for (std::size_t i = i0; i < i1; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < begin; ++i) EXPECT_EQ(visits[i].load(), 0);
  for (std::size_t i = begin; i < end; ++i)
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ScopedThreads guard(4);
  bool called = false;
  ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  ParallelFor(7, 3, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, RangeSmallerThanThreads) {
  ExpectFullCoverage(0, 3, 1, 8);
}

TEST(ParallelForTest, GrainLargerThanRange) {
  ExpectFullCoverage(0, 5, 100, 4);
}

TEST(ParallelForTest, GrainZeroIsClampedToOne) {
  ExpectFullCoverage(0, 9, 0, 4);
}

TEST(ParallelForTest, NonZeroBeginAndRaggedLastChunk) {
  ExpectFullCoverage(3, 17, 4, 3);  // chunks 3-6, 7-10, 11-14, 15-16
}

TEST(ParallelForTest, SerialConfigurationRunsInline) {
  ScopedThreads guard(1);
  std::vector<int> visits(16, 0);
  ParallelFor(0, 16, 2, [&](std::size_t i0, std::size_t i1) {
    EXPECT_FALSE(ThreadPool::InWorkerThread());
    for (std::size_t i = i0; i < i1; ++i) ++visits[i];
  });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 16);
}

TEST(ParallelForTest, RethrowsLowestChunkException) {
  ScopedThreads guard(4);
  // Chunks 2 and 5 both fail; the surfaced message must always be chunk 2's,
  // independent of scheduling.
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      ParallelFor(0, 8, 1, [&](std::size_t i0, std::size_t) {
        if (i0 == 2) throw std::runtime_error("chunk2");
        if (i0 == 5) throw std::runtime_error("chunk5");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk2");
    }
  }
}

TEST(ParallelForTest, NestedParallelForRunsInline) {
  ScopedThreads guard(4);
  std::vector<std::atomic<int>> visits(64);
  for (auto& v : visits) v = 0;
  ParallelFor(0, 8, 1, [&](std::size_t o0, std::size_t o1) {
    for (std::size_t o = o0; o < o1; ++o) {
      ParallelFor(0, 8, 1, [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i)
          visits[o * 8 + i].fetch_add(1);
      });
    }
  });
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(visits[i].load(), 1);
}

// ---------------------------------------------------------------------------
// ParallelReduceSum
// ---------------------------------------------------------------------------

TEST(ParallelReduceTest, SumsTheRange) {
  ScopedThreads guard(4);
  const double total = ParallelReduceSum(
      0, 1000, 64, [](std::size_t i0, std::size_t i1) {
        double s = 0.0;
        for (std::size_t i = i0; i < i1; ++i) s += static_cast<double>(i);
        return s;
      });
  EXPECT_DOUBLE_EQ(total, 999.0 * 1000.0 / 2.0);
}

TEST(ParallelReduceTest, BitwiseIdenticalAcrossThreadCounts) {
  // Ill-conditioned summands make any reassociation visible in the bits.
  auto chunk_sum = [](std::size_t i0, std::size_t i1) {
    double s = 0.0;
    for (std::size_t i = i0; i < i1; ++i) {
      s += (i % 3 == 0 ? 1e16 : 1.0) * (i % 2 == 0 ? 1.0 : -0.999999);
    }
    return s;
  };
  std::vector<double> results;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ScopedThreads guard(threads);
    results.push_back(ParallelReduceSum(0, 4097, 32, chunk_sum));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ParallelReduceTest, EmptyRangeIsZero) {
  ScopedThreads guard(4);
  EXPECT_EQ(ParallelReduceSum(4, 4, 8,
                              [](std::size_t, std::size_t) { return 1.0; }),
            0.0);
}

}  // namespace
}  // namespace core
}  // namespace whitenrec
