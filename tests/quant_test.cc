// Quantized item tables and dequantize-in-tile fused scoring (DESIGN.md
// §12). Contracts under test: encoding is explicit round-to-nearest-even
// with a per-row per-64-col-block scale whose roundtrip error is bounded by
// half a quantization step; the streamed quantized GEMM is BITWISE identical
// to materializing the dequantized table — at every thread count, tile
// width, and kernel variant — and to QuantizedItemTable::RowDot; the exact
// and IVF Scorer backends agree bit-for-bit under quantization at
// nprobe == clusters; and the BENCH_compression.json schema validator
// accepts the emitter's output and rejects tampered documents.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "linalg/gemm.h"
#include "linalg/quant.h"
#include "linalg/rng.h"
#include "linalg/scorer.h"
#include "linalg/topk.h"
#include "retrieval/scorer.h"
#include "whitening/compression_report.h"

namespace whitenrec {
namespace {

using linalg::ItemQuantKind;
using linalg::Matrix;
using linalg::QuantizedItemTable;
using linalg::Rng;
using linalg::ScoredItem;
using linalg::TopKSelector;

const std::vector<std::size_t> kThreadCounts = {1, 4, 16};

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : saved_(core::NumThreads()) {
    core::SetNumThreads(n);
  }
  ~ScopedThreads() { core::SetNumThreads(saved_); }

 private:
  std::size_t saved_;
};

class ScopedGemmKind {
 public:
  explicit ScopedGemmKind(linalg::GemmKind kind)
      : saved_(linalg::CurrentGemmKind()) {
    linalg::SetGemmKind(kind);
  }
  ~ScopedGemmKind() { linalg::SetGemmKind(saved_); }

 private:
  linalg::GemmKind saved_;
};

class ScopedItemQuantKind {
 public:
  explicit ScopedItemQuantKind(ItemQuantKind kind)
      : saved_(linalg::CurrentItemQuantKind()) {
    linalg::SetItemQuantKind(kind);
  }
  ~ScopedItemQuantKind() { linalg::SetItemQuantKind(saved_); }

 private:
  ItemQuantKind saved_;
};

// Item table with interesting structure for the quantizer: per-block
// magnitude swings (so per-block scales differ), exact zeros, and sign
// changes.
Matrix MakeItems(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix items(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double magnitude = (c / 64 == 0) ? 1.0 : 100.0;
      items(r, c) = magnitude * rng.Gaussian();
      if ((r * cols + c) % 37 == 0) items(r, c) = 0.0;
    }
  }
  return items;
}

// Streams the quantized product into a dense matrix for comparisons.
Matrix StreamToDense(const Matrix& users, const QuantizedItemTable& table,
                     std::size_t tile) {
  Matrix out(users.rows(), table.rows());
  linalg::StreamQuantMatMulTransBTiles(
      users, table, tile,
      [&](std::size_t i0, std::size_t i1, std::size_t j0, std::size_t jn,
          const Matrix& panel) {
        for (std::size_t r = i0; r < i1; ++r) {
          std::memcpy(out.RowPtr(r) + j0, panel.RowPtr(r),
                      jn * sizeof(double));
        }
      });
  return out;
}

TEST(RoundHalfToEvenTest, KnownValues) {
  EXPECT_EQ(linalg::RoundHalfToEven(0.0), 0.0);
  EXPECT_EQ(linalg::RoundHalfToEven(2.3), 2.0);
  EXPECT_EQ(linalg::RoundHalfToEven(2.7), 3.0);
  EXPECT_EQ(linalg::RoundHalfToEven(-2.3), -2.0);
  EXPECT_EQ(linalg::RoundHalfToEven(-2.7), -3.0);
  // Ties go to the even neighbor, both signs.
  EXPECT_EQ(linalg::RoundHalfToEven(0.5), 0.0);
  EXPECT_EQ(linalg::RoundHalfToEven(1.5), 2.0);
  EXPECT_EQ(linalg::RoundHalfToEven(2.5), 2.0);
  EXPECT_EQ(linalg::RoundHalfToEven(-0.5), 0.0);
  EXPECT_EQ(linalg::RoundHalfToEven(-1.5), -2.0);
  EXPECT_EQ(linalg::RoundHalfToEven(-2.5), -2.0);
}

TEST(QuantizedItemTableTest, Int8RoundtripWithinHalfStep) {
  const Matrix items = MakeItems(40, 80, 41);
  QuantizedItemTable table;
  table.Pack(items, ItemQuantKind::kInt8);
  EXPECT_EQ(table.rows(), 40u);
  EXPECT_EQ(table.cols(), 80u);
  Matrix deq;
  table.DequantizeRowsInto(0, 40, &deq);
  for (std::size_t r = 0; r < items.rows(); ++r) {
    // Per-block scale = blockwise max|v| / 127; RNE encoding keeps every
    // element within half a step of its dequantized value.
    for (std::size_t b = 0; b < 2; ++b) {
      double maxabs = 0.0;
      for (std::size_t c = 64 * b; c < std::min<std::size_t>(80, 64 * b + 64);
           ++c) {
        maxabs = std::max(maxabs, std::fabs(items(r, c)));
      }
      const double step = maxabs / 127.0;
      for (std::size_t c = 64 * b; c < std::min<std::size_t>(80, 64 * b + 64);
           ++c) {
        EXPECT_LE(std::fabs(deq(r, c) - items(r, c)), 0.5 * step + 1e-12)
            << "row " << r << " col " << c;
      }
    }
  }
}

TEST(QuantizedItemTableTest, ExactZerosSurviveQuantization) {
  Matrix items(3, 70);
  // One all-zero row and scattered zeros elsewhere.
  items(1, 0) = 4.0;
  items(1, 69) = -8.0;
  items(2, 5) = 1e-3;
  QuantizedItemTable table;
  table.Pack(items, ItemQuantKind::kInt8);
  Matrix deq;
  table.DequantizeRowsInto(0, 3, &deq);
  for (std::size_t c = 0; c < 70; ++c) EXPECT_EQ(deq(0, c), 0.0);
  EXPECT_EQ(deq(1, 1), 0.0);
  EXPECT_EQ(deq(1, 0), 4.0);
  EXPECT_EQ(deq(1, 69), -8.0);
}

TEST(QuantizedItemTableTest, Bf16RoundtripBounded) {
  const Matrix items = MakeItems(20, 48, 42);
  QuantizedItemTable table;
  table.Pack(items, ItemQuantKind::kBf16);
  Matrix deq;
  table.DequantizeRowsInto(0, 20, &deq);
  for (std::size_t r = 0; r < items.rows(); ++r) {
    for (std::size_t c = 0; c < items.cols(); ++c) {
      // bf16 keeps 8 mantissa bits: relative error <= 2^-8.
      EXPECT_LE(std::fabs(deq(r, c) - items(r, c)),
                std::fabs(items(r, c)) / 256.0 + 1e-30);
    }
  }
  // Short-mantissa values are exact.
  Matrix exact(1, 65);
  exact(0, 0) = 1.0;
  exact(0, 1) = -2.5;
  exact(0, 64) = 0.375;
  QuantizedItemTable etable;
  etable.Pack(exact, ItemQuantKind::kBf16);
  Matrix edeq;
  etable.DequantizeRowsInto(0, 1, &edeq);
  EXPECT_EQ(edeq(0, 0), 1.0);
  EXPECT_EQ(edeq(0, 1), -2.5);
  EXPECT_EQ(edeq(0, 64), 0.375);
}

TEST(QuantizedItemTableTest, PackedBytesShrinkAtLeast4x) {
  const Matrix items = MakeItems(128, 64, 43);
  const std::size_t dense = 128 * 64 * sizeof(double);
  QuantizedItemTable int8;
  int8.Pack(items, ItemQuantKind::kInt8);
  // d = 64: one scale per row -> (64 + 8) bytes/row vs 512.
  EXPECT_EQ(int8.PackedBytes(), 128u * (64 + sizeof(double)));
  EXPECT_GE(dense / int8.PackedBytes(), 7u);
  QuantizedItemTable bf16;
  bf16.Pack(items, ItemQuantKind::kBf16);
  EXPECT_EQ(bf16.PackedBytes(), 128u * 64u * 2u);
  EXPECT_EQ(dense / bf16.PackedBytes(), 4u);
}

// The headline determinism contract: the streamed quantized product is
// bitwise identical to the materialized GEMM over the dequantized table —
// for every thread count x tile width x kernel variant — and RowDot
// reproduces single elements.
TEST(QuantStreamTest, BitwiseAcrossThreadsTilesAndKernels) {
  const Matrix users = MakeItems(17, 80, 44);
  const Matrix items = MakeItems(203, 80, 45);
  for (ItemQuantKind kind : {ItemQuantKind::kInt8, ItemQuantKind::kBf16}) {
    QuantizedItemTable table;
    table.Pack(items, kind);
    Matrix deq;
    table.DequantizeRowsInto(0, items.rows(), &deq);
    const Matrix reference = linalg::MatMulTransB(users, deq);
    for (linalg::GemmKind gemm :
         {linalg::GemmKind::kNaive, linalg::GemmKind::kBlocked}) {
      ScopedGemmKind scoped_gemm(gemm);
      for (std::size_t threads : kThreadCounts) {
        ScopedThreads scoped_threads(threads);
        for (std::size_t tile : {std::size_t{1}, std::size_t{7},
                                 std::size_t{64}, std::size_t{500}}) {
          const Matrix got = StreamToDense(users, table, tile);
          ASSERT_EQ(got.rows(), reference.rows());
          ASSERT_EQ(got.cols(), reference.cols());
          for (std::size_t r = 0; r < got.rows(); ++r) {
            for (std::size_t c = 0; c < got.cols(); ++c) {
              ASSERT_EQ(got(r, c), reference(r, c))
                  << "quant=" << linalg::ItemQuantKindName(kind)
                  << " threads=" << threads << " tile=" << tile << " ("
                  << r << "," << c << ")";
            }
          }
        }
      }
    }
    for (std::size_t r = 0; r < users.rows(); r += 5) {
      for (std::size_t j = 0; j < items.rows(); j += 41) {
        EXPECT_EQ(table.RowDot(users, r, j), reference(r, j));
      }
    }
  }
}

void ExpectSameSelection(const std::vector<ScoredItem>& got,
                         const std::vector<ScoredItem>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << "position " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "position " << i;
  }
}

std::vector<std::vector<ScoredItem>> TopKLists(
    linalg::Scorer* scorer, const Matrix& users,
    const std::vector<std::vector<std::size_t>>& exclusions, std::size_t k) {
  std::vector<TopKSelector> selectors;
  selectors.reserve(users.rows());
  for (std::size_t r = 0; r < users.rows(); ++r) selectors.emplace_back(k);
  scorer->TopKBatch(users, exclusions, &selectors);
  std::vector<std::vector<ScoredItem>> lists;
  lists.reserve(selectors.size());
  for (const TopKSelector& sel : selectors) {
    lists.push_back(sel.SortedDescending());
  }
  return lists;
}

TEST(QuantScorerTest, ExactBackendMatchesDequantizedReference) {
  const Matrix users = MakeItems(9, 80, 46);
  const Matrix items = MakeItems(150, 80, 47);
  std::vector<std::vector<std::size_t>> exclusions(users.rows());
  exclusions[0] = {0, 3, 149};
  exclusions[4] = {10, 11, 12, 13};
  ScopedItemQuantKind scoped(ItemQuantKind::kInt8);
  // Reference: materialized scores over the dequantized table, selected by
  // an independent selector pass.
  QuantizedItemTable table;
  table.Pack(items, ItemQuantKind::kInt8);
  Matrix deq;
  table.DequantizeRowsInto(0, items.rows(), &deq);
  const Matrix scores = linalg::MatMulTransB(users, deq);
  std::vector<std::vector<ScoredItem>> want;
  for (std::size_t r = 0; r < users.rows(); ++r) {
    TopKSelector sel(10);
    for (std::size_t j = 0; j < items.rows(); ++j) {
      if (std::binary_search(exclusions[r].begin(), exclusions[r].end(), j)) {
        continue;
      }
      sel.Push(j, scores(r, j));
    }
    want.push_back(sel.SortedDescending());
  }
  std::unique_ptr<linalg::Scorer> scorer = linalg::MakeExactScorer();
  scorer->Rebuild(items);
  for (std::size_t threads : kThreadCounts) {
    ScopedThreads scoped_threads(threads);
    const auto got = TopKLists(scorer.get(), users, exclusions, 10);
    for (std::size_t r = 0; r < got.size(); ++r) {
      ExpectSameSelection(got[r], want[r]);
    }
  }
}

TEST(QuantScorerTest, IvfAtFullProbesMatchesExactUnderQuant) {
  const Matrix users = MakeItems(7, 64, 48);
  const Matrix items = MakeItems(240, 64, 49);
  for (ItemQuantKind kind : {ItemQuantKind::kInt8, ItemQuantKind::kBf16}) {
    ScopedItemQuantKind scoped(kind);
    std::unique_ptr<linalg::Scorer> exact = linalg::MakeExactScorer();
    exact->Rebuild(items);
    retrieval::ScorerConfig config;
    config.kind = retrieval::ScorerKind::kIvf;
    config.clusters = 12;
    config.nprobe = 12;  // full probe: candidate set == catalog
    std::unique_ptr<linalg::Scorer> ivf = retrieval::MakeScorer(config);
    ivf->Rebuild(items);
    const auto want = TopKLists(exact.get(), users, {}, 10);
    const auto got = TopKLists(ivf.get(), users, {}, 10);
    for (std::size_t r = 0; r < got.size(); ++r) {
      ExpectSameSelection(got[r], want[r]);
    }
  }
}

TEST(QuantScorerTest, Fp32KindIsBitwiseUnchanged) {
  const Matrix users = MakeItems(6, 80, 50);
  const Matrix items = MakeItems(90, 80, 51);
  std::unique_ptr<linalg::Scorer> plain = linalg::MakeExactScorer();
  plain->Rebuild(items);
  const auto want = TopKLists(plain.get(), users, {}, 8);
  ScopedItemQuantKind scoped(ItemQuantKind::kFp32);
  std::unique_ptr<linalg::Scorer> scorer = linalg::MakeExactScorer();
  scorer->Rebuild(items);
  const auto got = TopKLists(scorer.get(), users, {}, 8);
  for (std::size_t r = 0; r < got.size(); ++r) {
    ExpectSameSelection(got[r], want[r]);
  }
}

TEST(CompressionReportTest, EmitterOutputValidates) {
  CompressionBenchResult result;
  result.top_k = 10;
  result.dim = 64;
  result.queries = 8;
  result.catalog_items = 100;
  result.baseline_bytes = 100 * 64 * sizeof(double);
  result.baseline_ndcg = 0.8;
  CompressionCell reference;
  reference.rank = 64;
  reference.quant = "fp32";
  reference.table_bytes = result.baseline_bytes;
  reference.compression_ratio = 1.0;
  reference.scoring_qps = 1000.0;
  reference.ndcg_at_k = 0.8;
  reference.recall_vs_reference = 1.0;
  reference.ndcg_loss_frac = 0.0;
  CompressionCell int8 = reference;
  int8.quant = "int8";
  int8.table_bytes = 100 * (64 + sizeof(double));
  int8.compression_ratio = static_cast<double>(result.baseline_bytes) /
                           static_cast<double>(int8.table_bytes);
  int8.ndcg_at_k = 0.796;
  int8.recall_vs_reference = 0.99;
  int8.ndcg_loss_frac = 0.005;
  result.cells = {reference, int8};
  const std::string json = CompressionBenchJson(result);
  EXPECT_TRUE(ValidateCompressionBenchJson(json).ok())
      << ValidateCompressionBenchJson(json).message();

  // Tampering fails: acceptance floor violated when the compressed cell's
  // loss exceeds 1%.
  result.cells[1].ndcg_loss_frac = 0.02;
  EXPECT_FALSE(ValidateCompressionBenchJson(CompressionBenchJson(result)).ok());
  result.cells[1].ndcg_loss_frac = 0.005;
  // Missing reference cell fails.
  result.cells[0].rank = 32;
  EXPECT_FALSE(ValidateCompressionBenchJson(CompressionBenchJson(result)).ok());
  result.cells[0].rank = 64;
  // Unknown quant name and garbage both fail.
  result.cells[1].quant = "int4";
  EXPECT_FALSE(ValidateCompressionBenchJson(CompressionBenchJson(result)).ok());
  EXPECT_FALSE(ValidateCompressionBenchJson("{not json").ok());
}

}  // namespace
}  // namespace whitenrec
