// Sublinear retrieval contracts (ISSUE 7):
//  * deterministic k-means: bitwise-identical centroids and assignments at
//    any thread count and across repeated runs; duplicate points and
//    clusters > points degrade gracefully (empty/singleton clusters);
//  * IVF search: recall@K-vs-exact is monotone non-decreasing in nprobe and
//    exactly 1.0 at nprobe == clusters (exact-parity fallback), including
//    under exclusions — lists then match exact search bitwise;
//  * the Scorer seam: WHITENREC_SCORER/WHITENREC_IVF_* knobs parse strictly,
//    the exact scorer reproduces the inline streamed scoring, and eval
//    TopKRecommendations with an injected IVF scorer at full probe equals
//    the exact lists;
//  * IVF serving: responses bitwise reproducible across thread counts,
//    batch windows, and repeated runs, and ingest-triggered index rebuilds
//    keep responses a pure function of the ingest history;
//  * the BENCH_ann.json schema validator accepts the writer's output and
//    rejects shape/range/monotonicity violations;
//  * eval::RecallVsReference and data::CheckCatalogIndexable /
//    GenerateItemFeatures (block-size invariance) unit contracts.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "linalg/gemm.h"
#include "linalg/quant.h"
#include "linalg/rng.h"
#include "linalg/topk.h"
#include "retrieval/ann_report.h"
#include "retrieval/ivf_index.h"
#include "retrieval/kmeans.h"
#include "retrieval/scorer.h"
#include "seqrec/baselines.h"
#include "seqrec/trainer.h"
#include "serve/service.h"

namespace whitenrec {
namespace retrieval {
namespace {

using linalg::Matrix;
using linalg::ScoredItem;

const std::vector<std::size_t> kThreadCounts = {1, 2, 5};

Matrix RandomPoints(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  linalg::Rng rng(seed);
  return rng.GaussianMatrix(rows, cols, 1.0);
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// Restores an env var on scope exit; sets it when value != nullptr.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

// ---------------------------------------------------------------------------
// k-means determinism and degenerate shapes.
// ---------------------------------------------------------------------------

TEST(KMeans, BitwiseIdenticalAcrossThreadCountsAndRuns) {
  const Matrix points = RandomPoints(400, 12, 21);
  KMeansConfig config;
  config.clusters = 16;
  config.iterations = 6;
  config.seed = 5;

  const std::size_t saved = core::NumThreads();
  KMeansResult reference;
  bool have_reference = false;
  for (std::size_t threads : kThreadCounts) {
    core::SetNumThreads(threads);
    const KMeansResult run = FitKMeans(points, config);
    const KMeansResult rerun = FitKMeans(points, config);
    EXPECT_TRUE(BitwiseEqual(run.centroids, rerun.centroids))
        << "run-to-run drift at " << threads << " threads";
    EXPECT_EQ(run.assignment, rerun.assignment);
    if (!have_reference) {
      reference = run;
      have_reference = true;
    } else {
      EXPECT_TRUE(BitwiseEqual(reference.centroids, run.centroids))
          << "thread-count drift at " << threads << " threads";
      EXPECT_EQ(reference.assignment, run.assignment);
    }
  }
  core::SetNumThreads(saved);
}

TEST(KMeans, TrainingSampleKeepsFullAssignmentComplete) {
  const Matrix points = RandomPoints(300, 6, 3);
  KMeansConfig config;
  config.clusters = 8;
  config.max_train_rows = 64;  // force the strided sample path
  const KMeansResult result = FitKMeans(points, config);
  ASSERT_EQ(result.assignment.size(), points.rows());
  for (std::size_t i = 0; i < points.rows(); ++i) {
    EXPECT_LT(result.assignment[i], result.centroids.rows());
    EXPECT_EQ(result.assignment[i],
              NearestCentroid(result.centroids, points, i));
  }
}

TEST(KMeans, DuplicatePointsAndEmptyClustersDoNotAbort) {
  // 10 identical rows, 4 clusters: k-means++ hits the zero-total-weight
  // fallback, every point ties to centroid 0, clusters 1..3 go empty and
  // keep their seeded centroids.
  Matrix points(10, 4);
  for (std::size_t r = 0; r < points.rows(); ++r) {
    for (std::size_t c = 0; c < points.cols(); ++c) points(r, c) = 1.5;
  }
  KMeansConfig config;
  config.clusters = 4;
  const KMeansResult result = FitKMeans(points, config);
  EXPECT_EQ(result.centroids.rows(), 4u);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    EXPECT_EQ(result.assignment[i], 0u);  // tie -> smallest centroid id
  }
}

TEST(KMeans, SingletonClustersWhenClustersEqualsPoints) {
  const Matrix points = RandomPoints(5, 3, 9);
  KMeansConfig config;
  config.clusters = 5;
  const KMeansResult result = FitKMeans(points, config);
  // Every point sits alone in some cluster: assignments are a permutation.
  std::vector<std::size_t> counts(5, 0);
  for (std::uint32_t a : result.assignment) ++counts[a];
  for (std::size_t c = 0; c < counts.size(); ++c) EXPECT_EQ(counts[c], 1u);
}

TEST(KMeans, MoreClustersThanPointsClamps) {
  const Matrix points = RandomPoints(3, 2, 11);
  KMeansConfig config;
  config.clusters = 10;
  const KMeansResult result = FitKMeans(points, config);
  EXPECT_EQ(result.centroids.rows(), 3u);
}

// ---------------------------------------------------------------------------
// IVF: monotone recall, exact parity, exclusions.
// ---------------------------------------------------------------------------

struct IvfCase {
  Matrix items;
  Matrix queries;
  IvfIndex index;
  std::size_t clusters = 0;

  IvfCase(std::size_t num_items, std::size_t dim, std::size_t num_queries,
          std::size_t want_clusters) {
    items = RandomPoints(num_items, dim, 33);
    queries = RandomPoints(num_queries, dim, 44);
    IvfBuildConfig config;
    config.clusters = want_clusters;
    index = IvfIndex::Build(items, config);
    clusters = index.clusters();
  }

  std::vector<ScoredItem> ExactTopK(std::size_t qi, std::size_t k,
                                    const std::vector<std::size_t>& excl)
      const {
    linalg::TopKSelector sel(k);
    for (std::size_t j = 0; j < items.rows(); ++j) {
      if (!excl.empty() && std::binary_search(excl.begin(), excl.end(), j)) {
        continue;
      }
      sel.Push(j, linalg::RowDotTransB(queries, qi, items, j));
    }
    return sel.SortedDescending();
  }

  std::vector<ScoredItem> IvfTopK(std::size_t qi, std::size_t k,
                                  std::size_t nprobe,
                                  const std::vector<std::size_t>& excl) const {
    linalg::TopKSelector sel(k);
    index.Search(queries, qi, items, nprobe, excl, &sel);
    return sel.SortedDescending();
  }
};

TEST(IvfIndex, MemberListsPartitionTheCatalogAscending) {
  const IvfCase c(300, 8, 1, 12);
  std::vector<char> seen(300, 0);
  for (std::size_t cl = 0; cl < c.clusters; ++cl) {
    const std::vector<std::size_t>& members = c.index.cluster_members(cl);
    for (std::size_t m = 0; m < members.size(); ++m) {
      if (m > 0) {
        EXPECT_LT(members[m - 1], members[m]);
      }
      ASSERT_LT(members[m], seen.size());
      EXPECT_EQ(seen[members[m]], 0);
      seen[members[m]] = 1;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1);
}

TEST(IvfIndex, RecallMonotoneInNprobeAndExactAtFullProbe) {
  const IvfCase c(500, 16, 24, 20);
  const std::size_t k = 10;
  const std::vector<std::size_t> no_excl;
  for (std::size_t qi = 0; qi < c.queries.rows(); ++qi) {
    const std::vector<ScoredItem> exact = c.ExactTopK(qi, k, no_excl);
    double prev_recall = -1.0;
    for (std::size_t nprobe = 1; nprobe <= c.clusters; ++nprobe) {
      const std::vector<ScoredItem> approx = c.IvfTopK(qi, k, nprobe, no_excl);
      const double recall = eval::RecallVsReference(approx, exact);
      EXPECT_GE(recall, prev_recall)
          << "recall dipped at query " << qi << " nprobe " << nprobe;
      prev_recall = recall;
    }
    // Exact parity: probing every cluster IS exact search, bitwise.
    const std::vector<ScoredItem> full = c.IvfTopK(qi, k, c.clusters, no_excl);
    ASSERT_EQ(full.size(), exact.size());
    for (std::size_t r = 0; r < full.size(); ++r) {
      EXPECT_EQ(full[r].item, exact[r].item);
      EXPECT_EQ(std::memcmp(&full[r].score, &exact[r].score, sizeof(double)),
                0);
    }
  }
}

TEST(IvfIndex, ExactParityHoldsUnderExclusions) {
  const IvfCase c(200, 8, 8, 10);
  std::vector<std::size_t> excl = {3, 17, 40, 41, 42, 118, 199};
  for (std::size_t qi = 0; qi < c.queries.rows(); ++qi) {
    const std::vector<ScoredItem> exact = c.ExactTopK(qi, 5, excl);
    const std::vector<ScoredItem> full = c.IvfTopK(qi, 5, c.clusters, excl);
    ASSERT_EQ(full.size(), exact.size());
    for (std::size_t r = 0; r < full.size(); ++r) {
      EXPECT_EQ(full[r].item, exact[r].item);
      for (std::size_t e : excl) EXPECT_NE(full[r].item, e);
    }
  }
}

TEST(IvfIndex, SearchIsThreadCountInvariant) {
  const IvfCase c(300, 8, 16, 12);
  ScorerConfig config;
  config.kind = ScorerKind::kIvf;
  config.clusters = 12;
  config.nprobe = 3;
  std::unique_ptr<Scorer> scorer = MakeScorer(config);
  scorer->Rebuild(c.items);

  const std::size_t saved = core::NumThreads();
  std::vector<std::vector<ScoredItem>> reference;
  for (std::size_t threads : kThreadCounts) {
    core::SetNumThreads(threads);
    std::vector<linalg::TopKSelector> selectors;
    for (std::size_t r = 0; r < c.queries.rows(); ++r) {
      selectors.emplace_back(10);
    }
    scorer->TopKBatch(c.queries, {}, &selectors);
    std::vector<std::vector<ScoredItem>> lists;
    for (const linalg::TopKSelector& sel : selectors) {
      lists.push_back(sel.SortedDescending());
    }
    if (reference.empty()) {
      reference = lists;
    } else {
      ASSERT_EQ(reference.size(), lists.size());
      for (std::size_t q = 0; q < lists.size(); ++q) {
        ASSERT_EQ(reference[q].size(), lists[q].size());
        for (std::size_t r = 0; r < lists[q].size(); ++r) {
          EXPECT_EQ(reference[q][r].item, lists[q][r].item);
          EXPECT_EQ(std::memcmp(&reference[q][r].score, &lists[q][r].score,
                                sizeof(double)),
                    0);
        }
      }
    }
  }
  core::SetNumThreads(saved);
}

// ---------------------------------------------------------------------------
// Scorer seam: env knobs, exact backend parity.
// ---------------------------------------------------------------------------

TEST(ScorerConfig, FromEnvParsesAndDefaults) {
  {
    ScopedEnv kind("WHITENREC_SCORER", nullptr);
    ScopedEnv clusters("WHITENREC_IVF_CLUSTERS", nullptr);
    ScopedEnv nprobe("WHITENREC_IVF_NPROBE", nullptr);
    const ScorerConfig config = ScorerConfig::FromEnv();
    EXPECT_EQ(config.kind, ScorerKind::kExact);
    EXPECT_EQ(config.clusters, 0u);
    EXPECT_EQ(config.nprobe, 8u);
  }
  {
    ScopedEnv kind("WHITENREC_SCORER", "ivf");
    ScopedEnv clusters("WHITENREC_IVF_CLUSTERS", "64");
    ScopedEnv nprobe("WHITENREC_IVF_NPROBE", "4");
    const ScorerConfig config = ScorerConfig::FromEnv();
    EXPECT_EQ(config.kind, ScorerKind::kIvf);
    EXPECT_EQ(config.clusters, 64u);
    EXPECT_EQ(config.nprobe, 4u);
  }
}

TEST(Scorer, ExactBackendMatchesBruteForce) {
  const Matrix items = RandomPoints(150, 8, 55);
  const Matrix users = RandomPoints(7, 8, 66);
  std::unique_ptr<Scorer> scorer = MakeScorer(ScorerConfig());
  scorer->Rebuild(items);
  std::vector<std::vector<std::size_t>> exclusions(users.rows());
  exclusions[2] = {1, 5, 9};
  std::vector<linalg::TopKSelector> selectors;
  for (std::size_t r = 0; r < users.rows(); ++r) selectors.emplace_back(6);
  scorer->TopKBatch(users, exclusions, &selectors);
  // Score the table the way the ambient WHITENREC_ITEM_QUANT representation
  // does, so check-compress can re-run this suite under int8: the brute
  // force reference must read the packed values the scorer actually scores.
  const linalg::ItemQuantKind quant_kind = linalg::CurrentItemQuantKind();
  linalg::QuantizedItemTable quant_table;
  if (quant_kind != linalg::ItemQuantKind::kFp32) {
    quant_table.Pack(items, quant_kind);
  }
  for (std::size_t r = 0; r < users.rows(); ++r) {
    linalg::TopKSelector brute(6);
    for (std::size_t j = 0; j < items.rows(); ++j) {
      const std::vector<std::size_t>& excl = exclusions[r];
      if (std::binary_search(excl.begin(), excl.end(), j)) continue;
      brute.Push(j, quant_table.empty()
                        ? linalg::RowDotTransB(users, r, items, j)
                        : quant_table.RowDot(users, r, j));
    }
    const std::vector<ScoredItem> want = brute.SortedDescending();
    const std::vector<ScoredItem> got = selectors[r].SortedDescending();
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(want[i].item, got[i].item);
      EXPECT_EQ(std::memcmp(&want[i].score, &got[i].score, sizeof(double)),
                0);
    }
  }
}

// ---------------------------------------------------------------------------
// Serving through the IVF scorer: reproducibility + ingest rebuilds.
// ---------------------------------------------------------------------------

struct ServingFixture {
  ServingFixture()
      : data(data::GenerateDataset(data::ToysProfile(0.05))) {}

  static seqrec::SasRecConfig ModelConfig() {
    seqrec::SasRecConfig config;
    config.hidden_dim = 16;
    config.num_blocks = 1;
    config.num_heads = 2;
    config.ffn_hidden = 32;
    config.max_len = 8;
    return config;
  }

  std::unique_ptr<seqrec::SasRecRecommender> FreshModel() const {
    WhitenRecConfig wconfig;
    wconfig.out_dim = 16;
    return seqrec::MakeWhitenRec(data.dataset, ModelConfig(), wconfig);
  }

  serve::ServeConfig IvfServeConfig() const {
    serve::ServeConfig config;
    config.top_k = 5;
    config.refit_every = 4;
    config.scorer.kind = ScorerKind::kIvf;
    config.scorer.clusters = 8;
    config.scorer.nprobe = 3;
    return config;
  }

  std::vector<serve::ServeRequest> Trace(std::size_t n) const {
    std::vector<serve::ServeRequest> trace;
    linalg::Rng rng(17);
    const std::size_t num_items = data.dataset.num_items;
    for (std::size_t i = 0; i < n; ++i) {
      trace.push_back(serve::ServeRequest{rng.UniformInt(7),
                                          rng.UniformInt(num_items)});
    }
    return trace;
  }

  data::GeneratedData data;
};

ServingFixture& Fixture() {
  static ServingFixture* fixture = new ServingFixture();
  return *fixture;
}

bool SameResponses(const std::vector<serve::ServeResponse>& a,
                   const std::vector<serve::ServeResponse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].topk.size() != b[i].topk.size()) return false;
    if (a[i].session_len != b[i].session_len) return false;
    for (std::size_t k = 0; k < a[i].topk.size(); ++k) {
      if (a[i].topk[k].item != b[i].topk[k].item) return false;
      if (std::memcmp(&a[i].topk[k].score, &b[i].topk[k].score,
                      sizeof(double)) != 0) {
        return false;
      }
    }
  }
  return true;
}

TEST(IvfServing, ReproducibleAcrossThreadsBatchingAndRuns) {
  ServingFixture& fixture = Fixture();
  const std::vector<serve::ServeRequest> trace = fixture.Trace(60);

  const std::size_t saved = core::NumThreads();
  std::vector<serve::ServeResponse> reference;
  bool have_reference = false;
  for (std::size_t threads : kThreadCounts) {
    core::SetNumThreads(threads);
    for (std::size_t slice : {std::size_t{1}, std::size_t{7},
                              std::size_t{60}}) {
      auto rec = fixture.FreshModel();
      serve::RecommendService service(rec->model(),
                                      fixture.IvfServeConfig());
      std::vector<serve::ServeResponse> responses;
      for (std::size_t begin = 0; begin < trace.size(); begin += slice) {
        const std::size_t end = std::min(trace.size(), begin + slice);
        const std::vector<serve::ServeRequest> chunk(
            trace.begin() + static_cast<std::ptrdiff_t>(begin),
            trace.begin() + static_cast<std::ptrdiff_t>(end));
        for (serve::ServeResponse& r : service.HandleBatch(chunk)) {
          responses.push_back(std::move(r));
        }
      }
      if (!have_reference) {
        reference = std::move(responses);
        have_reference = true;
      } else {
        EXPECT_TRUE(SameResponses(reference, responses))
            << "threads=" << threads << " slice=" << slice;
      }
    }
  }
  core::SetNumThreads(saved);
}

TEST(IvfServing, IngestRebuildKeepsResponsesReproducible) {
  ServingFixture& fixture = Fixture();
  const std::vector<serve::ServeRequest> trace = fixture.Trace(24);
  const std::size_t feature_dim =
      fixture.data.dataset.text_embeddings.cols();

  // The same interleaved ingest/serve schedule must produce identical
  // responses on two independent services (fixed rebuild cadence
  // refit_every=4 -> index rebuilds are part of the deterministic state).
  auto run = [&]() {
    auto rec = fixture.FreshModel();
    serve::RecommendService service(rec->model(), fixture.IvfServeConfig());
    EXPECT_TRUE(service
                    .EnableIngest(fixture.data.dataset.text_embeddings,
                                  WhiteningKind::kZca, 1e-5)
                    .ok());
    linalg::Rng rng(23);
    std::vector<serve::ServeResponse> responses;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      std::vector<double> feature(feature_dim);
      for (double& x : feature) x = rng.Gaussian();
      EXPECT_TRUE(service.IngestItem(feature).ok());
      responses.push_back(service.Handle(trace[i]));
    }
    const serve::ServeStats stats = service.stats();
    // 24 ingests at refit_every=4 -> 6 refits, each rebuilding the index,
    // plus the construction-time build.
    EXPECT_EQ(stats.refits, 6u);
    EXPECT_EQ(stats.index_rebuilds, 7u);
    return responses;
  };
  const std::vector<serve::ServeResponse> first = run();
  const std::vector<serve::ServeResponse> second = run();
  EXPECT_TRUE(SameResponses(first, second));
}

// ---------------------------------------------------------------------------
// Eval path: TopKRecommendations with an injected IVF scorer.
// ---------------------------------------------------------------------------

TEST(TopKRecommendationsIvf, FullProbeMatchesExactLists) {
  ServingFixture& fixture = Fixture();
  auto rec = fixture.FreshModel();
  const data::Dataset& ds = fixture.data.dataset;
  std::vector<data::EvalInstance> instances;
  for (std::size_t u = 0; u < std::min<std::size_t>(ds.sequences.size(), 12);
       ++u) {
    const std::vector<std::size_t>& seq = ds.sequences[u];
    if (seq.size() < 2) continue;
    data::EvalInstance inst;
    inst.user = u;
    inst.input.assign(seq.begin(), seq.end() - 1);
    inst.target = seq.back();
    instances.push_back(inst);
  }
  ASSERT_FALSE(instances.empty());

  std::vector<std::vector<std::size_t>> exact;
  {
    ScopedEnv kind("WHITENREC_SCORER", nullptr);
    exact = seqrec::TopKRecommendations(rec.get(), instances, ds.sequences,
                                        8, 5);
  }
  {
    // The eval path takes an injected linalg::Scorer; the env knobs choose
    // the backend at the composition root, not inside seqrec.
    ScopedEnv kind("WHITENREC_SCORER", "ivf");
    ScopedEnv clusters("WHITENREC_IVF_CLUSTERS", "6");
    ScopedEnv nprobe("WHITENREC_IVF_NPROBE", "6");
    std::unique_ptr<Scorer> ivf_scorer = MakeScorer(ScorerConfig::FromEnv());
    const std::vector<std::vector<std::size_t>> ivf =
        seqrec::TopKRecommendations(rec.get(), instances, ds.sequences, 8, 5,
                                    256, ivf_scorer.get());
    EXPECT_EQ(exact, ivf);
  }
}

// ---------------------------------------------------------------------------
// RecallVsReference.
// ---------------------------------------------------------------------------

TEST(RecallVsReference, CountsSetOverlap) {
  EXPECT_DOUBLE_EQ(
      eval::RecallVsReference(std::vector<std::size_t>{1, 2, 3},
                              std::vector<std::size_t>{1, 2, 3}),
      1.0);
  EXPECT_DOUBLE_EQ(
      eval::RecallVsReference(std::vector<std::size_t>{3, 2, 9},
                              std::vector<std::size_t>{1, 2, 3}),
      2.0 / 3.0);
  EXPECT_DOUBLE_EQ(
      eval::RecallVsReference(std::vector<std::size_t>{7, 8},
                              std::vector<std::size_t>{1, 2}),
      0.0);
  // Order is irrelevant; an empty reference scores 1.0.
  EXPECT_DOUBLE_EQ(
      eval::RecallVsReference(std::vector<std::size_t>{9, 1},
                              std::vector<std::size_t>{1, 9}),
      1.0);
  EXPECT_DOUBLE_EQ(eval::RecallVsReference(std::vector<std::size_t>{1},
                                           std::vector<std::size_t>{}),
                   1.0);
}

TEST(RecallVsReference, ScoredItemOverloadIgnoresScores) {
  const std::vector<ScoredItem> cand = {{0.9, 4}, {0.1, 2}};
  const std::vector<ScoredItem> ref = {{0.5, 2}, {0.4, 7}};
  EXPECT_DOUBLE_EQ(eval::RecallVsReference(cand, ref), 0.5);
}

// ---------------------------------------------------------------------------
// BENCH_ann.json schema.
// ---------------------------------------------------------------------------

AnnBenchResult SmallResult() {
  AnnBenchResult result;
  result.top_k = 10;
  result.dim = 16;
  result.queries = 32;
  AnnCatalogSweep sweep;
  sweep.catalog_items = 1000;
  sweep.clusters = 32;
  sweep.build_seconds = 0.01;
  sweep.exact_qps = 1000.0;
  sweep.points = {{1, 0.62, 9000.0, 9.0, 31.0},
                  {4, 0.91, 4000.0, 4.0, 125.0},
                  {16, 1.0, 1500.0, 1.5, 500.0}};
  result.sweep.push_back(sweep);
  return result;
}

TEST(AnnBenchJson, WriterOutputValidates) {
  const std::string json = AnnBenchJson(SmallResult());
  const Status status = ValidateAnnBenchJson(json);
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(AnnBenchJson, RejectsShapeAndRangeViolations) {
  EXPECT_FALSE(ValidateAnnBenchJson("{}").ok());
  EXPECT_FALSE(ValidateAnnBenchJson("not json").ok());

  AnnBenchResult bad_recall = SmallResult();
  bad_recall.sweep[0].points[1].recall_at_k = 1.5;
  EXPECT_FALSE(ValidateAnnBenchJson(AnnBenchJson(bad_recall)).ok());

  AnnBenchResult dip = SmallResult();
  dip.sweep[0].points[2].recall_at_k = 0.5;  // below the nprobe=4 point
  EXPECT_FALSE(ValidateAnnBenchJson(AnnBenchJson(dip)).ok());

  AnnBenchResult unordered = SmallResult();
  std::swap(unordered.sweep[0].points[0], unordered.sweep[0].points[1]);
  EXPECT_FALSE(ValidateAnnBenchJson(AnnBenchJson(unordered)).ok());

  AnnBenchResult empty_points = SmallResult();
  empty_points.sweep[0].points.clear();
  EXPECT_FALSE(ValidateAnnBenchJson(AnnBenchJson(empty_points)).ok());
}

// ---------------------------------------------------------------------------
// Generator scaling satellites.
// ---------------------------------------------------------------------------

TEST(CatalogIndexable, GuardsIntOverflow) {
  EXPECT_TRUE(data::CheckCatalogIndexable(1000000, 64).ok());
  const std::size_t int_max =
      static_cast<std::size_t>(std::numeric_limits<int>::max());
  EXPECT_FALSE(data::CheckCatalogIndexable(int_max, 2).ok());
  EXPECT_FALSE(data::CheckCatalogIndexable(int_max / 8 + 1, 8).ok());
  EXPECT_TRUE(data::CheckCatalogIndexable(int_max / 8, 8).ok());
  const Status status = data::CheckCatalogIndexable(int_max, 64);
  EXPECT_NE(status.message().find("int indexing"), std::string::npos);
}

TEST(GenerateItemFeatures, DeterministicAndBlockSizeInvariant) {
  data::ItemFeatureConfig config;
  config.num_items = 1000;
  config.embed_dim = 16;
  config.latent_dim = 4;
  config.num_categories = 8;
  config.seed = 77;
  config.block_rows = 128;
  const Matrix a = data::GenerateItemFeatures(config);
  const Matrix b = data::GenerateItemFeatures(config);
  EXPECT_TRUE(BitwiseEqual(a, b));
  config.block_rows = 1000;  // one block
  const Matrix c = data::GenerateItemFeatures(config);
  EXPECT_TRUE(BitwiseEqual(a, c));
  config.block_rows = 37;  // ragged blocks
  const Matrix d = data::GenerateItemFeatures(config);
  EXPECT_TRUE(BitwiseEqual(a, d));
  ASSERT_EQ(a.rows(), 1000u);
  ASSERT_EQ(a.cols(), 16u);
}

}  // namespace
}  // namespace retrieval
}  // namespace whitenrec
