#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/split.h"
#include "eval/alignment_uniformity.h"
#include "eval/conditioning.h"
#include "eval/metrics.h"
#include "seqrec/baselines.h"
#include "seqrec/general_rec.h"
#include "seqrec/item_encoder.h"
#include "seqrec/model.h"
#include "seqrec/trainer.h"

namespace whitenrec {
namespace seqrec {
namespace {

using linalg::Matrix;
using linalg::Rng;

// Shared tiny dataset for model tests (expensive to regenerate per test).
const data::GeneratedData& TinyData() {
  static const data::GeneratedData* data = [] {
    data::DatasetProfile p = data::ArtsProfile(0.3);
    p.plm.embed_dim = 16;
    p.plm.calibration_iters = 15;
    return new data::GeneratedData(data::GenerateDataset(p));
  }();
  return *data;
}

SasRecConfig TinyModelConfig() {
  SasRecConfig config;
  config.hidden_dim = 16;
  config.num_blocks = 1;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.dropout = 0.1;
  config.max_len = 8;
  config.seed = 21;
  return config;
}

TrainConfig TinyTrainConfig() {
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 64;
  config.learning_rate = 2e-3;
  config.patience = 3;
  return config;
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, RankOfTargetCountsHigherScores) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  const std::vector<char> none(4, 0);
  EXPECT_EQ(eval::RankOfTarget(scores, 1, none), 0u);
  EXPECT_EQ(eval::RankOfTarget(scores, 3, none), 1u);
  EXPECT_EQ(eval::RankOfTarget(scores, 0, none), 3u);
}

TEST(MetricsTest, ExclusionRemovesCompetitors) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  std::vector<char> excluded(4, 0);
  excluded[1] = 1;
  EXPECT_EQ(eval::RankOfTarget(scores, 3, excluded), 0u);
}

TEST(MetricsTest, AccumulatorRecallNdcg) {
  eval::MetricAccumulator acc({2, 5});
  acc.AddRank(0);  // hit at both Ks, NDCG 1.0
  acc.AddRank(3);  // hit only at K=5
  acc.AddRank(10); // miss
  EXPECT_NEAR(acc.RecallAt(2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.RecallAt(5), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.NdcgAt(2), 1.0 / 3.0, 1e-12);
  const double ndcg5 = (1.0 + 1.0 / std::log2(5.0)) / 3.0;
  EXPECT_NEAR(acc.NdcgAt(5), ndcg5, 1e-12);
  EXPECT_EQ(acc.count(), 3u);
}

TEST(MetricsTest, NdcgDecaysWithRank) {
  eval::MetricAccumulator top({20});
  top.AddRank(0);
  eval::MetricAccumulator low({20});
  low.AddRank(15);
  EXPECT_GT(top.NdcgAt(20), low.NdcgAt(20));
}

// ---------------------------------------------------------------------------
// Alignment / uniformity & conditioning
// ---------------------------------------------------------------------------

TEST(AlignUniformTest, PerfectAlignmentIsZero) {
  Rng rng(1);
  const Matrix items = rng.GaussianMatrix(10, 4, 1.0);
  Matrix users(3, 4);
  std::vector<std::size_t> positives = {0, 5, 9};
  for (std::size_t u = 0; u < 3; ++u) users.SetRow(u, items.Row(positives[u]));
  Rng rng2(2);
  const auto au = eval::MeasureAlignmentUniformity(users, items, positives, &rng2);
  EXPECT_NEAR(au.l_align, 0.0, 1e-12);
}

TEST(AlignUniformTest, CollapsedRepsHaveHighUniformityLoss) {
  // All representations identical -> e^0 everywhere -> l_uniform = 0 (max).
  Matrix same(8, 4, 1.0);
  Rng rng(3);
  const Matrix items = rng.GaussianMatrix(8, 4, 1.0);
  Rng rng2(4);
  const auto collapsed = eval::MeasureAlignmentUniformity(
      same, items, std::vector<std::size_t>(8, 0), &rng2);
  Rng rng3(5);
  const Matrix spread = rng.GaussianMatrix(8, 4, 1.0);
  const auto dispersed = eval::MeasureAlignmentUniformity(
      spread, items, std::vector<std::size_t>(8, 0), &rng3);
  EXPECT_GT(collapsed.l_uniform_user, dispersed.l_uniform_user);
  EXPECT_NEAR(collapsed.l_uniform_user, 0.0, 1e-9);
}

TEST(ConditioningTest, IsotropicNearOne) {
  Rng rng(6);
  const Matrix v = rng.GaussianMatrix(2000, 4, 1.0);
  EXPECT_LT(eval::ItemEmbeddingConditionNumber(v), 1.5);
}

TEST(ConditioningTest, AnisotropicLarge) {
  Rng rng(7);
  Matrix v = rng.GaussianMatrix(500, 4, 1.0);
  for (std::size_t r = 0; r < v.rows(); ++r) v(r, 0) *= 100.0;
  EXPECT_GT(eval::ItemEmbeddingConditionNumber(v), 100.0);
}

// ---------------------------------------------------------------------------
// Item encoders
// ---------------------------------------------------------------------------

TEST(IdEncoderTest, ForwardReturnsTable) {
  Rng rng(8);
  IdEncoder enc(5, 3, &rng);
  const Matrix v = enc.Forward(false);
  EXPECT_EQ(v.rows(), 5u);
  EXPECT_EQ(v.cols(), 3u);
}

TEST(IdEncoderTest, BackwardAccumulates) {
  Rng rng(9);
  IdEncoder enc(4, 2, &rng);
  enc.Backward(Matrix(4, 2, 1.0));
  enc.Backward(Matrix(4, 2, 1.0));
  EXPECT_DOUBLE_EQ(enc.table().grad(0, 0), 2.0);
}

TEST(SumEncoderTest, AddsOutputs) {
  Rng rng(10);
  auto a = std::make_unique<IdEncoder>(4, 3, &rng);
  auto b = std::make_unique<IdEncoder>(4, 3, &rng);
  const Matrix va = a->Forward(false);
  const Matrix vb = b->Forward(false);
  IdEncoder* araw = a.get();
  IdEncoder* braw = b.get();
  SumEncoder sum(std::move(a), std::move(b));
  const Matrix v = sum.Forward(false);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(v.data()[i], va.data()[i] + vb.data()[i], 1e-12);
  sum.Backward(Matrix(4, 3, 2.0));
  EXPECT_DOUBLE_EQ(araw->table().grad(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(braw->table().grad(1, 1), 2.0);
}

// ---------------------------------------------------------------------------
// SasRecModel
// ---------------------------------------------------------------------------

TEST(SasRecModelTest, ScoreShape) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  const auto batches = data::MakeEvalBatches(split.valid, 8, 16);
  const Matrix scores = rec->model()->ScoreLastPositions(batches[0]);
  EXPECT_EQ(scores.rows(), batches[0].batch_size);
  EXPECT_EQ(scores.cols(), ds.num_items);
}

TEST(SasRecModelTest, TrainStepReturnsFiniteLoss) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  Rng rng(11);
  const auto batches = data::MakeTrainBatches(split.train, 8, 32, &rng);
  const double loss = rec->model()->TrainStep(batches[0]);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0);
  // Initial loss should be near log(num_items) for random init.
  EXPECT_NEAR(loss, std::log(static_cast<double>(ds.num_items)), 1.5);
}

TEST(SasRecModelTest, TrainingReducesLoss) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  std::vector<nn::Parameter*> params = rec->model()->Parameters();
  nn::Adam::Options opts;
  opts.learning_rate = 3e-3;
  nn::Adam adam(params, opts);
  Rng rng(12);
  double first = 0.0, last = 0.0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    const auto batches = data::MakeTrainBatches(split.train, 8, 64, &rng);
    double sum = 0.0;
    for (const auto& batch : batches) {
      sum += rec->model()->TrainStep(batch);
      adam.Step();
    }
    if (epoch == 0) first = sum / static_cast<double>(batches.size());
    last = sum / static_cast<double>(batches.size());
  }
  EXPECT_LT(last, first);
}

TEST(SasRecModelTest, UserRepresentationShape) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  const auto batches = data::MakeEvalBatches(split.valid, 8, 16);
  const Matrix reps = rec->model()->UserRepresentations(batches[0]);
  EXPECT_EQ(reps.rows(), batches[0].batch_size);
  EXPECT_EQ(reps.cols(), TinyModelConfig().hidden_dim);
}

TEST(SasRecModelTest, PaddingDoesNotAffectScores) {
  // The same context padded to different lengths must score identically.
  const data::Dataset& ds = TinyData().dataset;
  SasRecConfig config = TinyModelConfig();
  config.dropout = 0.0;
  auto rec = MakeSasRecId(ds, config);
  data::EvalInstance inst{0, {1, 2, 3}, 0};
  const auto short_batches = data::MakeEvalBatches({inst}, 4, 4);
  const auto long_batches = data::MakeEvalBatches({inst}, 8, 4);
  const Matrix s1 = rec->model()->ScoreLastPositions(short_batches[0]);
  const Matrix s2 = rec->model()->ScoreLastPositions(long_batches[0]);
  for (std::size_t c = 0; c < s1.cols(); ++c)
    EXPECT_NEAR(s1(0, c), s2(0, c), 1e-9);
}

// ---------------------------------------------------------------------------
// Trainer
// ---------------------------------------------------------------------------

TEST(TrainerTest, FitProducesLogsAndParams) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  const TrainResult& result = rec->Fit(split, TinyTrainConfig());
  EXPECT_FALSE(result.epochs.empty());
  EXPECT_GT(result.num_parameters, 0u);
  EXPECT_GE(result.best_valid_ndcg20, 0.0);
  for (const auto& log : result.epochs) EXPECT_TRUE(std::isfinite(log.train_loss));
}

TEST(TrainerTest, EarlyStoppingCanTriggersBeforeMaxEpochs) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  TrainConfig config = TinyTrainConfig();
  config.epochs = 50;
  config.patience = 1;
  const TrainResult& result = rec->Fit(split, config);
  EXPECT_LT(result.epochs.size(), 50u);
}

TEST(TrainerTest, RecordAnalysisPopulatesFields) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  TrainConfig config = TinyTrainConfig();
  config.epochs = 2;
  config.record_analysis = true;
  const TrainResult& result = rec->Fit(split, config);
  for (const auto& log : result.epochs) {
    EXPECT_GT(log.condition_number, 0.0);
    EXPECT_GT(log.l_align, 0.0);
    EXPECT_LE(log.l_uniform_user, 1e-9);  // log-mean-exp of negatives
  }
}

TEST(TrainerTest, EvaluateRankingBounds) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  rec->Fit(split, TinyTrainConfig());
  const EvalResult result =
      EvaluateRanking(rec.get(), split.test, split.train, 8);
  EXPECT_GE(result.recall20, 0.0);
  EXPECT_LE(result.recall20, 1.0);
  EXPECT_LE(result.ndcg20, result.recall20 + 1e-12);
  EXPECT_GE(result.recall50, result.recall20);
  EXPECT_GE(result.ndcg50, result.ndcg20);
  EXPECT_EQ(result.count, split.test.size());
}

TEST(TrainerTest, TrainedModelBeatsRandomScores) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  TrainConfig config = TinyTrainConfig();
  config.epochs = 8;
  rec->Fit(split, config);
  const EvalResult trained =
      EvaluateRanking(rec.get(), split.test, split.train, 8);
  // Random ranking recall@20 on ~70+ items would be < 0.35; a trained model
  // on this easy synthetic data should do clearly better.
  const double random_recall =
      20.0 / static_cast<double>(ds.num_items);
  EXPECT_GT(trained.recall20, random_recall);
}

// ---------------------------------------------------------------------------
// Baseline factories (construction + short smoke training)
// ---------------------------------------------------------------------------

TEST(BaselinesTest, AllSasRecVariantsConstruct) {
  const data::Dataset& ds = TinyData().dataset;
  const SasRecConfig config = TinyModelConfig();
  WhitenRecConfig wc;
  wc.relaxed_groups = 4;
  EXPECT_EQ(MakeSasRecId(ds, config)->name(), "SASRec(ID)");
  EXPECT_EQ(MakeSasRecText(ds, config)->name(), "SASRec(T)");
  EXPECT_EQ(MakeSasRecTextId(ds, config)->name(), "SASRec(T+ID)");
  EXPECT_EQ(MakeWhitenRec(ds, config, wc)->name(), "WhitenRec(T)");
  EXPECT_EQ(MakeWhitenRecPlus(ds, config, wc)->name(), "WhitenRec+(T)");
  EXPECT_EQ(MakeWhitenRec(ds, config, wc, true)->name(), "WhitenRec(T+ID)");
  EXPECT_EQ(MakeUniSRec(ds, config, false)->name(), "UniSRec(T)");
  EXPECT_EQ(MakeUniSRec(ds, config, true)->name(), "UniSRec(T+ID)");
  EXPECT_EQ(MakeCl4SRec(ds, config)->name(), "CL4SRec(ID)");
  EXPECT_EQ(MakeS3Rec(ds, config)->name(), "S3-Rec(T+ID)");
  EXPECT_EQ(MakeVqRec(ds, config)->name(), "VQRec(T)");
}

TEST(BaselinesTest, Cl4SRecTrainsWithAuxiliaryLoss) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeCl4SRec(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  TrainConfig config = TinyTrainConfig();
  config.epochs = 2;
  const TrainResult& result = rec->Fit(split, config);
  EXPECT_EQ(result.epochs.size(), 2u);
  for (const auto& log : result.epochs)
    EXPECT_TRUE(std::isfinite(log.train_loss));
}

TEST(BaselinesTest, S3RecTrainsWithAttributeTask) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeS3Rec(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  TrainConfig config = TinyTrainConfig();
  config.epochs = 2;
  const TrainResult& result = rec->Fit(split, config);
  EXPECT_EQ(result.epochs.size(), 2u);
  // Attribute matrix adds num_categories * hidden_dim params.
  EXPECT_GT(rec->NumParameters(),
            MakeSasRecTextId(ds, TinyModelConfig())->NumParameters());
}

TEST(BaselinesTest, VqRecQuantizesAndTrains) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeVqRec(ds, TinyModelConfig(), 4, 8);
  const data::Split split = data::LeaveOneOutSplit(ds);
  TrainConfig config = TinyTrainConfig();
  config.epochs = 2;
  const TrainResult& result = rec->Fit(split, config);
  EXPECT_EQ(result.epochs.size(), 2u);
}

TEST(BaselinesTest, FdsaTrainsAndScores) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeFdsa(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  TrainConfig config = TinyTrainConfig();
  config.epochs = 2;
  rec->Fit(split, config);
  const EvalResult result =
      EvaluateRanking(rec.get(), split.test, split.train, 8);
  EXPECT_GE(result.recall20, 0.0);
  EXPECT_GT(rec->NumParameters(), 0u);
}

TEST(BaselinesTest, TextOnlyModelsHaveFewerParamsThanTextId) {
  // Paper Table IX: removing ID embeddings shrinks the parameter count.
  const data::Dataset& ds = TinyData().dataset;
  const SasRecConfig config = TinyModelConfig();
  WhitenRecConfig wc;
  EXPECT_LT(MakeWhitenRecPlus(ds, config, wc)->NumParameters(),
            MakeWhitenRecPlus(ds, config, wc, true)->NumParameters());
}

// ---------------------------------------------------------------------------
// General recommenders
// ---------------------------------------------------------------------------

TEST(GeneralRecTest, GrcnFitsAndScores) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeGrcn(ds, 16);
  const data::Split split = data::LeaveOneOutSplit(ds);
  TrainConfig config = TinyTrainConfig();
  config.epochs = 2;
  rec->Fit(split, config);
  const EvalResult result =
      EvaluateRanking(rec.get(), split.test, split.train, 8);
  EXPECT_GE(result.recall20, 0.0);
  EXPECT_LE(result.recall50, 1.0);
}

TEST(GeneralRecTest, Bm3FitsAndScores) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeBm3(ds, 16);
  const data::Split split = data::LeaveOneOutSplit(ds);
  TrainConfig config = TinyTrainConfig();
  config.epochs = 2;
  rec->Fit(split, config);
  const EvalResult result =
      EvaluateRanking(rec.get(), split.test, split.train, 8);
  EXPECT_GE(result.recall20, 0.0);
}

TEST(GeneralRecTest, Names) {
  const data::Dataset& ds = TinyData().dataset;
  EXPECT_EQ(MakeGrcn(ds, 8)->name(), "GRCN(T+ID)");
  EXPECT_EQ(MakeBm3(ds, 8)->name(), "BM3(T+ID)");
}

// ---------------------------------------------------------------------------
// Cold-start end-to-end
// ---------------------------------------------------------------------------

TEST(ColdStartTest, TextModelScoresColdItems) {
  const data::Dataset& ds = TinyData().dataset;
  Rng rng(31);
  const data::ColdSplit cold = data::ColdStartSplit(ds, 0.15, &rng);
  auto rec = MakeSasRecText(ds, TinyModelConfig());
  TrainConfig config = TinyTrainConfig();
  config.epochs = 2;
  rec->Fit(cold.split, config);
  if (!cold.split.test.empty()) {
    const EvalResult result =
        EvaluateRanking(rec.get(), cold.split.test, cold.split.train, 8);
    EXPECT_EQ(result.count, cold.split.test.size());
  }
}

}  // namespace
}  // namespace seqrec
}  // namespace whitenrec
