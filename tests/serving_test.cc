// Online serving core contracts (ISSUE 6):
//  * the incremental session-cache forward (EncodeSequenceStep) is BITWISE
//    identical to the full batched eval forward at every prefix length up
//    to max_len truncation, across evictions and thread counts;
//  * micro-batched responses are bitwise identical to serving each request
//    alone, for every batch-window size, thread count, and cache capacity
//    (eviction is a cost event, never a correctness event);
//  * the synthetic traffic generator replays identical traces from a seed;
//  * the latency histogram reports exact quantiles on hand-computed
//    distributions in its unit-bucket region and merges associatively;
//  * the WHITENREC_SERVE_* env knobs parse strictly;
//  * the ingest path grows the catalog through an online whitening refit
//    without breaking serving.
// The *Soak* test doubles as the randomized-traffic TSan workload run by
// `make check-serve` (WHITENREC_SERVE_SOAK scales it up).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "data/batcher.h"
#include "data/generator.h"
#include "eval/metrics.h"
#include "linalg/rng.h"
#include "seqrec/baselines.h"
#include "seqrec/trainer.h"
#include "serve/admission.h"
#include "serve/chaos.h"
#include "serve/degrade.h"
#include "serve/degrade_harness.h"
#include "serve/harness.h"
#include "serve/latency_histogram.h"
#include "serve/service.h"
#include "serve/traffic.h"

namespace whitenrec {
namespace serve {
namespace {

using linalg::Matrix;
using linalg::ScoredItem;

const std::vector<std::size_t> kThreadCounts = {1, 4};

// Tiny dataset + untrained (random-init) WhitenRec model: the serving
// contracts are about bitwise reproducibility of the forward pass, which is
// independent of training.
struct ServingFixture {
  ServingFixture()
      : data(data::GenerateDataset(data::ToysProfile(0.05))),
        rec(seqrec::MakeWhitenRec(data.dataset, ModelConfig(), WConfig())) {}

  static seqrec::SasRecConfig ModelConfig() {
    seqrec::SasRecConfig config;
    config.hidden_dim = 16;
    config.num_blocks = 2;
    config.num_heads = 2;
    config.ffn_hidden = 32;
    config.max_len = 8;
    return config;
  }
  static WhitenRecConfig WConfig() {
    WhitenRecConfig config;
    config.out_dim = 16;
    return config;
  }

  seqrec::SasRecModel* model() { return rec->model(); }

  data::GeneratedData data;
  std::unique_ptr<seqrec::SasRecRecommender> rec;
};

ServingFixture& Fixture() {
  static ServingFixture* fixture = new ServingFixture();
  return *fixture;
}

// Ingest refits mutate the model's catalog in place, so tests that exercise
// it build a private model instead of touching the shared fixture.
std::unique_ptr<seqrec::SasRecRecommender> FreshModel() {
  return seqrec::MakeWhitenRec(Fixture().data.dataset,
                               ServingFixture::ModelConfig(),
                               ServingFixture::WConfig());
}

bool BitwiseEqualRows(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

bool SameResponses(const std::vector<ServeResponse>& a,
                   const std::vector<ServeResponse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].topk.size() != b[i].topk.size()) return false;
    if (a[i].session_len != b[i].session_len) return false;
    for (std::size_t k = 0; k < a[i].topk.size(); ++k) {
      if (a[i].topk[k].item != b[i].topk[k].item) return false;
      if (!BitwiseEqualRows(&a[i].topk[k].score, &b[i].topk[k].score, 1)) {
        return false;
      }
    }
  }
  return true;
}

// An unpadded single-sequence eval batch over `items`.
data::Batch MakeBatch(const std::vector<std::size_t>& items) {
  data::Batch batch;
  batch.batch_size = 1;
  batch.seq_len = items.size();
  batch.items = items;
  batch.input_mask.assign(items.size(), 1.0);
  batch.targets.assign(items.size(), 0);
  batch.target_weights.assign(items.size(), 0.0);
  batch.last_position = {items.size() - 1};
  batch.users = {0};
  return batch;
}

// ---------------------------------------------------------------------------
// Satellite 1: incremental forward parity.
// ---------------------------------------------------------------------------

TEST(IncrementalForward, BitwiseMatchesBatchedForwardAtEveryPrefix) {
  seqrec::SasRecModel* model = Fixture().model();
  const std::size_t max_len = model->config().max_len;
  const std::size_t hidden = model->config().hidden_dim;
  const Matrix v = model->EncodeItems(/*train=*/false);
  linalg::Rng rng(7);

  for (std::size_t threads : kThreadCounts) {
    core::SetNumThreads(threads);
    for (std::size_t len = 1; len <= max_len; ++len) {
      std::vector<std::size_t> items(len);
      for (std::size_t t = 0; t < len; ++t) {
        items[t] = rng.UniformInt(v.rows());
      }
      const Matrix h_full =
          model->EncodeSequences(MakeBatch(items), v, /*train=*/false);

      seqrec::SasRecModel::SessionStepState state;
      Matrix h_row;
      for (std::size_t t = 0; t < len; ++t) {
        model->EncodeSequenceStep(v, items[t], &state, &h_row);
        ASSERT_TRUE(BitwiseEqualRows(h_row.RowPtr(0), h_full.RowPtr(t),
                                     hidden))
            << "threads=" << threads << " len=" << len << " position=" << t;
      }
    }
  }
  core::SetNumThreads(0);
}

TEST(IncrementalForward, ReplayAfterClearMatchesUninterruptedSession) {
  // Eviction = losing the KV cache mid-session. Replaying the window into a
  // fresh cache must land bitwise on the uninterrupted session's state.
  seqrec::SasRecModel* model = Fixture().model();
  const std::size_t hidden = model->config().hidden_dim;
  const std::size_t max_len = model->config().max_len;
  const Matrix v = model->EncodeItems(/*train=*/false);
  linalg::Rng rng(11);
  std::vector<std::size_t> items(max_len);
  for (std::size_t t = 0; t < max_len; ++t) {
    items[t] = rng.UniformInt(v.rows());
  }

  for (std::size_t cut = 1; cut < max_len; ++cut) {
    seqrec::SasRecModel::SessionStepState uninterrupted;
    seqrec::SasRecModel::SessionStepState evicted;
    Matrix h_a;
    Matrix h_b;
    for (std::size_t t = 0; t < max_len; ++t) {
      model->EncodeSequenceStep(v, items[t], &uninterrupted, &h_a);
      if (t == cut) {
        // Simulate the eviction: drop state, replay the prefix.
        evicted.Clear();
        for (std::size_t r = 0; r < t; ++r) {
          model->EncodeSequenceStep(v, items[r], &evicted, &h_b);
        }
      }
      model->EncodeSequenceStep(v, items[t], &evicted, &h_b);
      ASSERT_TRUE(BitwiseEqualRows(h_a.RowPtr(0), h_b.RowPtr(0), hidden))
          << "cut=" << cut << " t=" << t;
    }
  }
}

TEST(IncrementalForward, TruncationShiftMatchesBatchedWindow) {
  // Streams longer than max_len: the service drops the oldest item and
  // replays. The replayed hidden state must equal the batched forward over
  // exactly the truncated window.
  seqrec::SasRecModel* model = Fixture().model();
  const std::size_t hidden = model->config().hidden_dim;
  const std::size_t max_len = model->config().max_len;
  const Matrix v = model->EncodeItems(/*train=*/false);
  linalg::Rng rng(13);
  std::vector<std::size_t> stream(3 * max_len);
  for (std::size_t t = 0; t < stream.size(); ++t) {
    stream[t] = rng.UniformInt(v.rows());
  }

  std::vector<std::size_t> window;
  seqrec::SasRecModel::SessionStepState state;
  Matrix h_step;
  for (std::size_t t = 0; t < stream.size(); ++t) {
    if (window.size() == max_len) {
      window.erase(window.begin());
      state.Clear();
    }
    window.push_back(stream[t]);
    if (state.len() + 1 != window.size()) {
      state.Clear();
      for (std::size_t r = 0; r + 1 < window.size(); ++r) {
        model->EncodeSequenceStep(v, window[r], &state, &h_step);
      }
    }
    model->EncodeSequenceStep(v, stream[t], &state, &h_step);

    const Matrix h_full =
        model->EncodeSequences(MakeBatch(window), v, /*train=*/false);
    ASSERT_TRUE(BitwiseEqualRows(h_step.RowPtr(0),
                                 h_full.RowPtr(window.size() - 1), hidden))
        << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Satellite 2: micro-batch determinism.
// ---------------------------------------------------------------------------

// Cuts a trace into micro-batches exactly like the harness batcher: same
// virtual window index, capped at max_batch.
std::vector<std::vector<ServeRequest>> CutBatches(
    const std::vector<TraceRequest>& trace, std::uint64_t window_ns,
    std::size_t max_batch) {
  std::vector<std::vector<ServeRequest>> batches;
  for (std::size_t i = 0; i < trace.size();) {
    std::vector<ServeRequest> batch;
    if (window_ns == 0) {
      batch.push_back(ServeRequest{trace[i].session_id, trace[i].item});
      ++i;
    } else {
      const std::uint64_t window = trace[i].arrival_ns / window_ns;
      while (i < trace.size() && trace[i].arrival_ns / window_ns == window &&
             batch.size() < max_batch) {
        batch.push_back(ServeRequest{trace[i].session_id, trace[i].item});
        ++i;
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::vector<ServeResponse> ServeTrace(seqrec::SasRecModel* model,
                                      const std::vector<TraceRequest>& trace,
                                      const ServeConfig& config,
                                      std::uint64_t window_ns,
                                      ServeStats* stats = nullptr) {
  RecommendService service(model, config);
  std::vector<ServeResponse> responses;
  responses.reserve(trace.size());
  for (const std::vector<ServeRequest>& batch :
       CutBatches(trace, window_ns, config.max_batch)) {
    std::vector<ServeResponse> out = service.HandleBatch(batch);
    for (ServeResponse& r : out) responses.push_back(std::move(r));
  }
  if (stats != nullptr) *stats = service.stats();
  return responses;
}

TEST(MicroBatching, CoalescedBitwiseEqualsSingleAtEveryWindowAndThreadCount) {
  seqrec::SasRecModel* model = Fixture().model();
  TrafficConfig traffic;
  traffic.num_sessions = 24;
  traffic.num_requests = 400;
  traffic.seed = 99;
  const std::vector<TraceRequest> trace =
      GenerateTrace(Fixture().data.dataset.sequences, traffic);

  ServeConfig config;
  config.top_k = 10;

  // Reference: every request served alone, single thread.
  core::SetNumThreads(1);
  const std::vector<ServeResponse> reference =
      ServeTrace(model, trace, config, /*window_ns=*/0);
  ASSERT_EQ(reference.size(), trace.size());
  for (const ServeResponse& r : reference) {
    ASSERT_EQ(r.topk.size(), config.top_k);
  }

  const std::vector<std::uint64_t> windows = {0, 1, 50000, 1000000,
                                              1000000000000ull};
  for (std::size_t threads : kThreadCounts) {
    core::SetNumThreads(threads);
    for (std::uint64_t window_ns : windows) {
      const std::vector<ServeResponse> got =
          ServeTrace(model, trace, config, window_ns);
      ASSERT_TRUE(SameResponses(reference, got))
          << "window_ns=" << window_ns << " threads=" << threads;
    }
  }
  core::SetNumThreads(0);
}

TEST(MicroBatching, EvictionIsCostNotCorrectness) {
  seqrec::SasRecModel* model = Fixture().model();
  TrafficConfig traffic;
  traffic.num_sessions = 16;
  traffic.num_requests = 300;
  traffic.seed = 5;
  const std::vector<TraceRequest> trace =
      GenerateTrace(Fixture().data.dataset.sequences, traffic);

  ServeConfig roomy;
  roomy.top_k = 8;
  roomy.max_cached_sessions = 1 << 20;
  ServeStats roomy_stats;
  const std::vector<ServeResponse> reference =
      ServeTrace(model, trace, roomy, /*window_ns=*/200000, &roomy_stats);
  EXPECT_EQ(roomy_stats.evictions, 0u);

  for (std::size_t cap : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    ServeConfig tight = roomy;
    tight.max_cached_sessions = cap;
    ServeStats tight_stats;
    const std::vector<ServeResponse> got =
        ServeTrace(model, trace, tight, /*window_ns=*/200000, &tight_stats);
    ASSERT_TRUE(SameResponses(reference, got)) << "cap=" << cap;
    EXPECT_GT(tight_stats.evictions, 0u) << "cap=" << cap;
    EXPECT_GT(tight_stats.recomputes, roomy_stats.recomputes) << "cap=" << cap;
  }
}

TEST(MicroBatching, ExcludesSessionHistoryFromRecommendations) {
  seqrec::SasRecModel* model = Fixture().model();
  ServeConfig config;
  config.top_k = 5;
  RecommendService service(model, config);
  const std::uint64_t session = 42;
  std::vector<std::size_t> consumed;
  linalg::Rng rng(3);
  for (std::size_t t = 0; t < model->config().max_len; ++t) {
    const std::size_t item = rng.UniformInt(service.num_items());
    consumed.push_back(item);
    const ServeResponse response =
        service.Handle(ServeRequest{session, item});
    ASSERT_EQ(response.session_len, consumed.size());
    for (const ScoredItem& hit : response.topk) {
      for (std::size_t seen : consumed) {
        EXPECT_NE(hit.item, seen) << "recommended an already-consumed item";
      }
    }
  }
}

TEST(Traffic, SameSeedReplaysIdenticalTrace) {
  TrafficConfig config;
  config.num_sessions = 32;
  config.num_requests = 500;
  config.seed = 1234;
  const auto& sequences = Fixture().data.dataset.sequences;
  const std::vector<TraceRequest> a = GenerateTrace(sequences, config);
  const std::vector<TraceRequest> b = GenerateTrace(sequences, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].arrival_ns, b[i].arrival_ns);
    ASSERT_EQ(a[i].session_id, b[i].session_id);
    ASSERT_EQ(a[i].item, b[i].item);
  }

  config.seed = 4321;
  const std::vector<TraceRequest> c = GenerateTrace(sequences, config);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].arrival_ns != c[i].arrival_ns ||
              a[i].session_id != c[i].session_id || a[i].item != c[i].item;
  }
  EXPECT_TRUE(differs) << "different seeds produced the same trace";
}

TEST(Traffic, ArrivalsStrictlyIncreaseAndZipfSkews) {
  TrafficConfig config;
  config.num_sessions = 50;
  config.num_requests = 2000;
  config.zipf_exponent = 1.2;
  const auto& sequences = Fixture().data.dataset.sequences;
  const std::vector<TraceRequest> trace = GenerateTrace(sequences, config);
  std::vector<std::size_t> hits(config.num_sessions, 0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) {
      ASSERT_GT(trace[i].arrival_ns, trace[i - 1].arrival_ns);
    }
    ASSERT_LT(trace[i].session_id, config.num_sessions);
    ++hits[trace[i].session_id];
  }
  // Session 0 must dominate the tail under a Zipf law.
  EXPECT_GT(hits[0], hits[config.num_sessions - 1] * 2);
}

// ---------------------------------------------------------------------------
// Satellite 3: latency histogram.
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, ExactQuantilesOnHandComputedDistribution) {
  LatencyHistogram hist;
  for (std::uint64_t v = 1; v <= 100; ++v) hist.Record(v);
  // rank = ceil(q * 100): p50 -> 50th smallest, p99 -> 99th, p999 -> 100th.
  EXPECT_EQ(hist.Quantile(0.50), 50u);
  EXPECT_EQ(hist.Quantile(0.99), 99u);
  EXPECT_EQ(hist.Quantile(0.999), 100u);
  EXPECT_EQ(hist.Quantile(0.0), 1u);
  EXPECT_EQ(hist.Quantile(1.0), 100u);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.sum(), 5050u);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), 100u);
  EXPECT_DOUBLE_EQ(hist.Mean(), 50.5);

  // Skewed distribution: 90 fast, 9 medium, 1 slow.
  LatencyHistogram skew;
  for (int i = 0; i < 90; ++i) skew.Record(10);
  for (int i = 0; i < 9; ++i) skew.Record(100);
  skew.Record(200);
  EXPECT_EQ(skew.Quantile(0.50), 10u);
  EXPECT_EQ(skew.Quantile(0.90), 10u);
  EXPECT_EQ(skew.Quantile(0.99), 100u);
  EXPECT_EQ(skew.Quantile(0.999), 200u);
}

TEST(LatencyHistogram, EmptyAndSingleValue) {
  LatencyHistogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.Quantile(0.5), 0u);
  EXPECT_EQ(empty.min(), 0u);
  EXPECT_EQ(empty.max(), 0u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);

  LatencyHistogram one;
  one.Record(77);
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(one.Quantile(q), 77u) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative) {
  linalg::Rng rng(2024);
  auto fill = [&rng](LatencyHistogram* h, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      // Mix unit-bucket and log-bucket regions up to ~17 minutes in ns.
      const std::uint64_t v = rng.NextU64() % 1000000000000ull;
      h->Record(v);
    }
  };
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram c;
  fill(&a, 500);
  fill(&b, 300);
  fill(&c, 700);

  LatencyHistogram ab_c = a;  // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  LatencyHistogram bc = b;  // a + (b + c)
  bc.Merge(c);
  LatencyHistogram a_bc = a;
  a_bc.Merge(bc);
  LatencyHistogram cba = c;  // commuted order
  cba.Merge(b);
  cba.Merge(a);

  for (const LatencyHistogram* other : {&a_bc, &cba}) {
    EXPECT_EQ(ab_c.count(), other->count());
    EXPECT_EQ(ab_c.sum(), other->sum());
    EXPECT_EQ(ab_c.min(), other->min());
    EXPECT_EQ(ab_c.max(), other->max());
    ASSERT_EQ(ab_c.buckets(), other->buckets());
  }
  // Identical bucket contents imply identical quantiles.
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(ab_c.Quantile(q), a_bc.Quantile(q));
  }
}

TEST(LatencyHistogram, BucketBoundsRoundTripWithBoundedRelativeError) {
  linalg::Rng rng(55);
  std::vector<std::uint64_t> probes = {0,       1,   255, 256, 257,
                                       511,     512, 1023, 1024, 65535,
                                       1u << 30};
  for (std::size_t i = 0; i < 200; ++i) {
    probes.push_back(rng.NextU64() % 1000000000000ull);
  }
  for (std::uint64_t v : probes) {
    const std::size_t index = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(index, LatencyHistogram::NumBuckets());
    const std::uint64_t lower = LatencyHistogram::BucketLowerBound(index);
    ASSERT_LE(lower, v) << "v=" << v;
    if (v < LatencyHistogram::kExactMax) {
      ASSERT_EQ(lower, v);
    } else {
      // Bucket width <= lower / kLogSubBuckets in the log region.
      ASSERT_LE(v - lower, lower / LatencyHistogram::kLogSubBuckets)
          << "v=" << v;
    }
    if (index + 1 < LatencyHistogram::NumBuckets()) {
      ASSERT_GT(LatencyHistogram::BucketLowerBound(index + 1), v) << "v=" << v;
    }
  }
}

TEST(LatencyHistogram, QuantilesAreMonotone) {
  linalg::Rng rng(77);
  LatencyHistogram hist;
  for (std::size_t i = 0; i < 5000; ++i) {
    hist.Record(rng.NextU64() % 100000000ull);
  }
  std::uint64_t prev = 0;
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t value = hist.Quantile(q);
    EXPECT_GE(value, prev) << "q=" << q;
    prev = value;
  }
}

// ---------------------------------------------------------------------------
// Satellite 4 support: env knob parsing.
// ---------------------------------------------------------------------------

TEST(ServeConfig, FromEnvOverlaysKnobs) {
  ASSERT_EQ(setenv("WHITENREC_SERVE_TOPK", "25", 1), 0);
  ASSERT_EQ(setenv("WHITENREC_SERVE_WINDOW_NS", "777", 1), 0);
  ASSERT_EQ(setenv("WHITENREC_SERVE_MAX_BATCH", "33", 1), 0);
  ASSERT_EQ(setenv("WHITENREC_SERVE_CACHE_SESSIONS", "99", 1), 0);
  ASSERT_EQ(setenv("WHITENREC_SERVE_REFIT_EVERY", "5", 1), 0);
  ASSERT_EQ(setenv("WHITENREC_SERVE_DEADLINE_NS", "123456", 1), 0);
  ASSERT_EQ(setenv("WHITENREC_SERVE_QUEUE_MAX", "77", 1), 0);
  ASSERT_EQ(setenv("WHITENREC_DEGRADE_LADDER", "exact,ivf:3,popularity", 1), 0);
  const ServeConfig config = ServeConfig::FromEnv();
  EXPECT_EQ(config.top_k, 25u);
  EXPECT_EQ(config.batch_window_ns, 777u);
  EXPECT_EQ(config.max_batch, 33u);
  EXPECT_EQ(config.max_cached_sessions, 99u);
  EXPECT_EQ(config.refit_every, 5u);
  EXPECT_EQ(config.deadline_ns, 123456u);
  EXPECT_EQ(config.queue_max, 77u);
  ASSERT_EQ(config.ladder.rungs.size(), 3u);
  EXPECT_EQ(config.ladder.rungs[0].kind, RungKind::kExact);
  EXPECT_EQ(config.ladder.rungs[1].kind, RungKind::kIvf);
  EXPECT_EQ(config.ladder.rungs[1].nprobe, 3u);
  EXPECT_EQ(config.ladder.rungs[2].kind, RungKind::kPopularity);
  for (const char* name :
       {"WHITENREC_SERVE_TOPK", "WHITENREC_SERVE_WINDOW_NS",
        "WHITENREC_SERVE_MAX_BATCH", "WHITENREC_SERVE_CACHE_SESSIONS",
        "WHITENREC_SERVE_REFIT_EVERY", "WHITENREC_SERVE_DEADLINE_NS",
        "WHITENREC_SERVE_QUEUE_MAX", "WHITENREC_DEGRADE_LADDER"}) {
    unsetenv(name);
  }
  const ServeConfig defaults = ServeConfig::FromEnv();
  EXPECT_EQ(defaults.top_k, ServeConfig().top_k);
  EXPECT_EQ(defaults.batch_window_ns, ServeConfig().batch_window_ns);
  EXPECT_EQ(defaults.deadline_ns, ServeConfig().deadline_ns);
  EXPECT_EQ(defaults.queue_max, ServeConfig().queue_max);
  EXPECT_TRUE(defaults.ladder.rungs.empty());
}

// ---------------------------------------------------------------------------
// Ingest path: online whitening refit.
// ---------------------------------------------------------------------------

TEST(Ingest, GrowsCatalogThroughOnlineWhiteningRefit) {
  auto rec = FreshModel();
  seqrec::SasRecModel* model = rec->model();
  ServeConfig config;
  config.top_k = 5;
  config.refit_every = 4;
  RecommendService service(model, config);
  const std::size_t before = service.num_items();

  const Matrix& raw = Fixture().data.dataset.text_embeddings;
  ASSERT_TRUE(service
                  .EnableIngest(raw, WhiteningKind::kZca, /*epsilon=*/1e-5)
                  .ok());

  // Warm a session, then ingest through a refit boundary.
  const ServeResponse warm1 =
      service.Handle(ServeRequest{7, 0});
  const ServeResponse warm2 = service.Handle(ServeRequest{7, 1 % before});
  EXPECT_FALSE(warm1.incremental);
  EXPECT_TRUE(warm2.incremental);

  linalg::Rng rng(21);
  for (std::size_t i = 0; i < config.refit_every; ++i) {
    std::vector<double> feature = raw.Row(i % raw.rows());
    for (double& x : feature) x += rng.Gaussian() * 0.05;
    ASSERT_TRUE(service.IngestItem(feature).ok()) << "i=" << i;
  }
  EXPECT_EQ(service.num_items(), before + config.refit_every);
  EXPECT_EQ(service.pending_ingests(), 0u);
  EXPECT_EQ(service.stats().refits, 1u);

  // The refit invalidated every cached session state: the next request
  // replays the window (recompute), then the session is warm again.
  const ServeResponse after = service.Handle(ServeRequest{7, 0});
  EXPECT_FALSE(after.incremental);
  const ServeResponse warm3 = service.Handle(ServeRequest{7, 1 % before});
  EXPECT_TRUE(warm3.incremental);
  ASSERT_EQ(after.topk.size(), config.top_k);
  for (const ScoredItem& hit : after.topk) {
    EXPECT_TRUE(std::isfinite(hit.score));
    EXPECT_LT(hit.item, service.num_items());
  }

  // New items are scorable: request one of them directly.
  const ServeResponse on_new =
      service.Handle(ServeRequest{8, before});  // first ingested item
  EXPECT_EQ(on_new.topk.size(), config.top_k);

  // Dimension mismatch is rejected.
  EXPECT_FALSE(service.IngestItem(std::vector<double>(raw.cols() + 1, 0.0))
                   .ok());
}

TEST(Ingest, RequiresTextFeatureEncoder) {
  auto id_rec = seqrec::MakeSasRecId(Fixture().data.dataset,
                                     ServingFixture::ModelConfig());
  RecommendService service(id_rec->model(), ServeConfig());
  const Status armed = service.EnableIngest(
      Fixture().data.dataset.text_embeddings, WhiteningKind::kZca, 1e-5);
  EXPECT_FALSE(armed.ok());
  EXPECT_FALSE(service.IngestItem(std::vector<double>(4, 0.0)).ok());
}

// ---------------------------------------------------------------------------
// Harness + BENCH_serving.json schema.
// ---------------------------------------------------------------------------

TEST(Harness, SweepProducesValidSchemaCheckedJson) {
  seqrec::SasRecModel* model = Fixture().model();
  HarnessConfig config;
  config.traffic.num_sessions = 12;
  config.traffic.num_requests = 120;
  config.batch_windows_ns = {0, 500000};
  config.thread_counts = {1, 2};
  const ServingBenchResult result = RunServingHarness(
      model, Fixture().data.dataset.sequences, config);
  ASSERT_EQ(result.points.size(), 4u);
  for (const SweepPoint& point : result.points) {
    EXPECT_GT(point.qps, 0.0);
    EXPECT_LE(point.p50_ns, point.p99_ns);
    EXPECT_LE(point.p99_ns, point.p999_ns);
    EXPECT_EQ(point.num_batches > 0, true);
  }
  // Coalescing windows can only grow the mean batch size.
  EXPECT_GE(result.points[1].mean_batch_size, result.points[0].mean_batch_size);

  const std::string json = ServingBenchJson(result);
  EXPECT_TRUE(ValidateServingBenchJson(json).ok())
      << ValidateServingBenchJson(json).message();
}

TEST(Harness, SchemaCheckerRejectsMalformedDocuments) {
  EXPECT_FALSE(ValidateServingBenchJson("").ok());
  EXPECT_FALSE(ValidateServingBenchJson("not json at all").ok());
  EXPECT_FALSE(ValidateServingBenchJson("[1, 2, 3]").ok());
  EXPECT_FALSE(ValidateServingBenchJson("{\"bench\": \"serving\"}").ok());
  // Wrong bench tag.
  EXPECT_FALSE(
      ValidateServingBenchJson(
          "{\"bench\": \"other\", \"catalog_items\": 1, \"hidden_dim\": 1, "
          "\"top_k\": 1, \"traffic\": {}, \"sweep\": []}")
          .ok());
  // Complete but with inverted percentiles: must be rejected.
  const std::string inverted =
      "{\"bench\": \"serving\", \"catalog_items\": 10, \"hidden_dim\": 4, "
      "\"top_k\": 2, \"traffic\": {\"num_sessions\": 1, \"num_requests\": 1, "
      "\"zipf_exponent\": 1, \"mean_interarrival_ns\": 1, \"seed\": 1}, "
      "\"sweep\": [{\"batch_window_ns\": 0, \"threads\": 1, \"qps\": 1, "
      "\"p50_ns\": 100, \"p99_ns\": 50, \"p999_ns\": 60, \"mean_ns\": 1, "
      "\"num_batches\": 1, \"mean_batch_size\": 1, \"cache_hit_rate\": 0, "
      "\"service_seconds\": 1}]}";
  const Status status = ValidateServingBenchJson(inverted);
  EXPECT_FALSE(status.ok());
  // An empty sweep is also invalid.
  const std::string empty_sweep =
      "{\"bench\": \"serving\", \"catalog_items\": 10, \"hidden_dim\": 4, "
      "\"top_k\": 2, \"traffic\": {\"num_sessions\": 1, \"num_requests\": 1, "
      "\"zipf_exponent\": 1, \"mean_interarrival_ns\": 1, \"seed\": 1}, "
      "\"sweep\": []}";
  EXPECT_FALSE(ValidateServingBenchJson(empty_sweep).ok());
}

// ---------------------------------------------------------------------------
// Randomized-traffic soak: the check-serve TSan workload. Scaled up via
// WHITENREC_SERVE_SOAK (request multiplier); small by default so the tier-1
// run stays fast.
// ---------------------------------------------------------------------------

TEST(Soak, RandomizedTrafficWithIngestStaysWellFormed) {
  auto rec = FreshModel();
  seqrec::SasRecModel* model = rec->model();
  const char* soak = std::getenv("WHITENREC_SERVE_SOAK");
  const std::size_t multiplier =
      soak != nullptr ? static_cast<std::size_t>(std::atoi(soak)) : 1;
  ASSERT_GE(multiplier, 1u);

  TrafficConfig traffic;
  traffic.num_sessions = 40;
  traffic.num_requests = 600 * multiplier;
  traffic.zipf_exponent = 1.1;
  traffic.seed = 31337;
  const std::vector<TraceRequest> trace =
      GenerateTrace(Fixture().data.dataset.sequences, traffic);

  ServeConfig config;
  config.top_k = 10;
  config.max_cached_sessions = 8;  // force steady eviction pressure
  config.max_batch = 32;
  config.refit_every = 64;
  RecommendService service(model, config);
  const Matrix& raw = Fixture().data.dataset.text_embeddings;
  ASSERT_TRUE(
      service.EnableIngest(raw, WhiteningKind::kZca, /*epsilon=*/1e-5).ok());

  linalg::Rng rng(8);
  std::size_t served = 0;
  const std::vector<std::vector<ServeRequest>> batches =
      CutBatches(trace, /*window_ns=*/250000, config.max_batch);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const std::vector<ServeResponse> responses =
        service.HandleBatch(batches[b]);
    ASSERT_EQ(responses.size(), batches[b].size());
    for (const ServeResponse& response : responses) {
      ASSERT_EQ(response.topk.size(), config.top_k);
      for (std::size_t k = 1; k < response.topk.size(); ++k) {
        // Canonical ranking order.
        ASSERT_TRUE(linalg::RanksBefore(response.topk[k - 1],
                                        response.topk[k]));
      }
      for (const ScoredItem& hit : response.topk) {
        ASSERT_TRUE(std::isfinite(hit.score));
        ASSERT_LT(hit.item, service.num_items());
      }
    }
    served += responses.size();
    // Interleave catalog growth with serving.
    if (b % 7 == 3) {
      std::vector<double> feature = raw.Row(rng.UniformInt(raw.rows()));
      for (double& x : feature) x += rng.Gaussian() * 0.02;
      ASSERT_TRUE(service.IngestItem(feature).ok());
    }
  }
  EXPECT_EQ(served, trace.size());
  EXPECT_GT(service.stats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// Overload resilience (ISSUE 10): admission control, degradation ladder,
// poisoned-ingest defense, chaos plane. DESIGN.md §13.
// ---------------------------------------------------------------------------

TEST(Admission, EdfOrderOverflowShedAndOverdueDropHandComputed) {
  AdmissionConfig config;
  config.queue_max = 3;
  AdmissionQueue queue(config);

  // Offers: (session, deadline). seq is assigned in offer order 0, 1, 2.
  auto offer = [&queue](std::uint64_t session, std::uint64_t deadline) {
    ServeRequest request;
    request.session_id = session;
    request.item = 0;
    request.deadline_ns = deadline;
    return queue.Offer(request);
  };

  EXPECT_FALSE(offer(10, 500).shed.has_value());   // seq 0
  EXPECT_FALSE(offer(11, 100).shed.has_value());   // seq 1
  EXPECT_FALSE(offer(12, 0).shed.has_value());     // seq 2: no deadline, last
  EXPECT_EQ(queue.size(), 3u);

  // Overflow sheds the unique EDF maximum: the deadline-free seq 2.
  const AdmissionQueue::OfferResult r3 = offer(13, 300);  // seq 3
  ASSERT_TRUE(r3.shed.has_value());
  EXPECT_EQ(r3.seq, 3u);
  EXPECT_EQ(r3.shed->seq, 2u);
  EXPECT_EQ(r3.shed->request.session_id, 12u);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.shed_overflow(), 1u);

  // An offer that is itself the EDF maximum sheds itself.
  const AdmissionQueue::OfferResult r4 = offer(14, 900);  // seq 4
  ASSERT_TRUE(r4.shed.has_value());
  EXPECT_EQ(r4.shed->seq, 4u);
  EXPECT_EQ(r4.shed->request.session_id, 14u);

  // DropOverdue removes exactly the expired EDF prefix: deadlines 100, 300.
  const std::vector<AdmittedRequest> overdue = queue.DropOverdue(300);
  ASSERT_EQ(overdue.size(), 2u);
  EXPECT_EQ(overdue[0].request.session_id, 11u);
  EXPECT_EQ(overdue[1].request.session_id, 13u);
  EXPECT_EQ(queue.shed_overdue(), 2u);

  // PopBatch returns the EDF prefix sorted back into seq (arrival) order.
  EXPECT_FALSE(offer(15, 200).shed.has_value());  // seq 5: earliest deadline
  const std::vector<AdmittedRequest> batch = queue.PopBatch(8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].seq, 0u);  // seq order, not deadline order
  EXPECT_EQ(batch[1].seq, 5u);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.offered(), 6u);
}

TEST(Admission, ShedSetIsPureFunctionOfTheOfferSequence) {
  // Same randomized offer/pop schedule twice: identical shed sets, identical
  // pop order — the queue consumes no clocks and no thread identity.
  auto run = [] {
    AdmissionConfig config;
    config.queue_max = 5;
    AdmissionQueue queue(config);
    linalg::Rng rng(404);
    std::vector<std::uint64_t> shed_seqs;
    std::vector<std::uint64_t> popped_seqs;
    for (std::size_t i = 0; i < 200; ++i) {
      ServeRequest request;
      request.session_id = rng.UniformInt(9);
      request.deadline_ns = 1 + rng.UniformInt(1000);
      const AdmissionQueue::OfferResult result = queue.Offer(request);
      if (result.shed.has_value()) shed_seqs.push_back(result.shed->seq);
      if (i % 3 == 2) {
        for (const AdmittedRequest& r : queue.PopBatch(2)) {
          popped_seqs.push_back(r.seq);
        }
      }
    }
    shed_seqs.push_back(queue.shed_overflow());
    return std::make_pair(shed_seqs, popped_seqs);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(DegradationLadder, HysteresisDegradesFastAndRecoversSlow) {
  LadderConfig config;
  config.rungs = {LadderRung{RungKind::kExact, 0, 1.0},
                  LadderRung{RungKind::kIvf, 8, 0.55},
                  LadderRung{RungKind::kPopularity, 0, 0.02}};
  config.high_watermark = 10;
  config.low_watermark = 2;
  config.degrade_after = 1;
  config.recover_after = 3;
  DegradationLadder ladder(config);

  EXPECT_EQ(ladder.Observe(5), 0u);   // dead band: stay
  EXPECT_EQ(ladder.Observe(10), 1u);  // >= high once: step down
  EXPECT_EQ(ladder.Observe(12), 2u);  // again: bottom rung
  EXPECT_EQ(ladder.Observe(50), 2u);  // clamped at the bottom
  EXPECT_EQ(ladder.Observe(2), 2u);   // <= low run 1 of 3
  EXPECT_EQ(ladder.Observe(0), 2u);   // run 2
  EXPECT_EQ(ladder.Observe(1), 1u);   // run 3: step up one rung
  EXPECT_EQ(ladder.Observe(2), 1u);   // run restarts after the step
  EXPECT_EQ(ladder.Observe(5), 1u);   // dead band resets the low run
  EXPECT_EQ(ladder.Observe(2), 1u);
  EXPECT_EQ(ladder.Observe(2), 1u);
  EXPECT_EQ(ladder.Observe(2), 0u);   // three consecutive lows: recovered
  EXPECT_EQ(ladder.Observe(0), 0u);   // clamped at the top

  ladder.Reset();
  EXPECT_EQ(ladder.rung(), 0u);
}

TEST(DegradationLadder, TrajectoryIsPureFunctionOfDepthSequence) {
  LadderConfig config;
  config.rungs = {LadderRung{RungKind::kExact, 0, 1.0},
                  LadderRung{RungKind::kIvf, 4, 0.35},
                  LadderRung{RungKind::kIvf, 2, 0.25},
                  LadderRung{RungKind::kPopularity, 0, 0.02}};
  config.high_watermark = 12;
  config.low_watermark = 3;
  config.degrade_after = 2;
  config.recover_after = 4;

  linalg::Rng rng(77);
  std::vector<std::size_t> depths(500);
  for (std::size_t& d : depths) d = rng.UniformInt(20);

  auto replay = [&config, &depths] {
    DegradationLadder ladder(config);
    std::vector<std::size_t> rungs;
    rungs.reserve(depths.size());
    for (std::size_t d : depths) rungs.push_back(ladder.Observe(d));
    return rungs;
  };
  const std::vector<std::size_t> first = replay();
  const std::vector<std::size_t> second = replay();
  EXPECT_EQ(first, second);
  // The trajectory actually moves: some batch was served degraded.
  EXPECT_GT(*std::max_element(first.begin(), first.end()), 0u);
}

bool SameOutcomes(const std::vector<ServeOutcome>& a,
                  const std::vector<ServeOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].seq != b[i].seq) return false;
    if (a[i].kind != b[i].kind) return false;
    if (a[i].status.code() != b[i].status.code()) return false;
    if (a[i].request.session_id != b[i].request.session_id) return false;
    if (a[i].request.item != b[i].request.item) return false;
    if (a[i].kind != ServeOutcomeKind::kServed) continue;
    if (a[i].response.rung != b[i].response.rung) return false;
    if (a[i].response.session_len != b[i].response.session_len) return false;
    if (a[i].response.topk.size() != b[i].response.topk.size()) return false;
    for (std::size_t k = 0; k < a[i].response.topk.size(); ++k) {
      if (a[i].response.topk[k].item != b[i].response.topk[k].item) {
        return false;
      }
      if (!BitwiseEqualRows(&a[i].response.topk[k].score,
                            &b[i].response.topk[k].score, 1)) {
        return false;
      }
    }
  }
  return true;
}

struct QueuedRun {
  std::vector<ServeOutcome> outcomes;
  std::vector<std::size_t> rung_served;
  ServeStats stats;
};

// Deterministic single-server drive of the admission-controlled path on the
// virtual clock: enqueue `serve_every` arrivals, cut one batch whose modeled
// cost advances the clock, repeat; then drain. Cutting batch `stall_at`
// additionally freezes the server for stall_ns (a simulated pause), so the
// queued requests outlive their deadlines and the overdue-drop path fires.
// Every control decision is a pure function of the trace, so the outcome
// stream must be bitwise reproducible at any thread count.
QueuedRun DriveQueued(seqrec::SasRecModel* model,
                      const std::vector<TraceRequest>& trace,
                      const ServeConfig& config, std::size_t serve_every,
                      std::uint64_t batch_cost_ns, std::size_t stall_at = 0,
                      std::uint64_t stall_ns = 0) {
  RecommendService service(model, config);
  QueuedRun run;
  std::uint64_t now_ns = 0;
  std::size_t since_batch = 0;
  std::size_t batches = 0;
  for (const TraceRequest& t : trace) {
    now_ns = std::max(now_ns, t.arrival_ns);
    ServeRequest request;
    request.session_id = t.session_id;
    request.item = t.item;
    request.arrival_ns = t.arrival_ns;
    request.deadline_ns = t.deadline_ns;
    service.Enqueue(request, &run.outcomes);
    if (++since_batch == serve_every) {
      since_batch = 0;
      service.ServeQueued(now_ns, &run.outcomes);
      now_ns += batch_cost_ns;
      if (++batches == stall_at) now_ns += stall_ns;
    }
  }
  while (service.queue_depth() > 0) {
    service.ServeQueued(now_ns, &run.outcomes);
    now_ns += batch_cost_ns;
  }
  run.rung_served = service.rung_served();
  run.stats = service.stats();
  return run;
}

TEST(Resilience, QueuedPathBitwiseMatchesDirectPathWhenUnloaded) {
  // No ladder, no deadlines, roomy queue: Enqueue + ServeQueued must be the
  // direct HandleBatch computation, rung-0 labeled, in arrival order.
  seqrec::SasRecModel* model = Fixture().model();
  TrafficConfig traffic;
  traffic.num_sessions = 10;
  traffic.num_requests = 96;
  traffic.seed = 71;
  const std::vector<TraceRequest> trace =
      GenerateTrace(Fixture().data.dataset.sequences, traffic);

  ServeConfig config;
  config.top_k = 6;
  config.max_batch = 16;
  config.queue_max = 1024;

  std::vector<ServeRequest> all;
  for (const TraceRequest& t : trace) {
    all.push_back(ServeRequest{t.session_id, t.item});
  }
  const std::vector<ServeResponse> direct =
      RecommendService(model, config).HandleBatch(all);

  const QueuedRun run = DriveQueued(model, trace, config,
                                    /*serve_every=*/trace.size(),
                                    /*batch_cost_ns=*/1);
  ASSERT_EQ(run.outcomes.size(), trace.size());
  ASSERT_EQ(run.rung_served.size(), 1u);
  EXPECT_EQ(run.rung_served[0], trace.size());
  for (std::size_t i = 0; i < run.outcomes.size(); ++i) {
    ASSERT_EQ(run.outcomes[i].kind, ServeOutcomeKind::kServed);
    EXPECT_EQ(run.outcomes[i].seq, i);
    EXPECT_EQ(run.outcomes[i].response.rung, 0u);
    ASSERT_EQ(run.outcomes[i].response.topk.size(), direct[i].topk.size());
    for (std::size_t k = 0; k < direct[i].topk.size(); ++k) {
      EXPECT_EQ(run.outcomes[i].response.topk[k].item, direct[i].topk[k].item);
      EXPECT_TRUE(BitwiseEqualRows(&run.outcomes[i].response.topk[k].score,
                                   &direct[i].topk[k].score, 1));
    }
  }
}

// Overloaded serving config shared by the determinism and soak tests: a
// bounded queue fed faster than it drains, tight deadlines, and a full
// ladder, so overflow sheds, deadline sheds, and degraded rungs all occur.
ServeConfig OverloadConfig() {
  ServeConfig config;
  config.top_k = 8;
  config.max_batch = 8;
  config.queue_max = 12;
  config.ladder.rungs =
      ParseLadderSpec("exact,ivf:4,popularity").ValueOrDie();
  config.ladder.high_watermark = 6;
  config.ladder.low_watermark = 2;
  // degrade_after 2 so the first (already overloaded) cut still serves at
  // rung 0: the tests below then see full-quality AND degraded service.
  config.ladder.degrade_after = 2;
  config.ladder.recover_after = 2;
  std::vector<std::size_t> popularity(Fixture().data.dataset.num_items, 0);
  for (const std::vector<std::size_t>& seq :
       Fixture().data.dataset.sequences) {
    for (std::size_t item : seq) ++popularity[item];
  }
  config.popularity = std::move(popularity);
  return config;
}

std::vector<TraceRequest> OverloadTrace(std::size_t num_requests,
                                        std::uint64_t seed) {
  TrafficConfig traffic;
  traffic.num_sessions = 20;
  traffic.num_requests = num_requests;
  traffic.mean_interarrival_ns = 50000;
  traffic.deadline_ns = 2000000;  // 2 ms: tight against the modeled cost
  traffic.seed = seed;
  return GenerateTrace(Fixture().data.dataset.sequences, traffic);
}

TEST(Resilience, OutcomesShedSetsAndRungsBitwiseIdenticalAcrossThreadCounts) {
  seqrec::SasRecModel* model = Fixture().model();
  const std::vector<TraceRequest> trace = OverloadTrace(400, 909);
  const ServeConfig config = OverloadConfig();

  core::SetNumThreads(1);
  const QueuedRun reference =
      DriveQueued(model, trace, config, /*serve_every=*/20,
                  /*batch_cost_ns=*/800000, /*stall_at=*/10,
                  /*stall_ns=*/5000000);
  // The run must actually exercise every disposition and a degraded rung;
  // otherwise the determinism claim below is vacuous.
  ASSERT_GT(reference.stats.queue_sheds, 0u);
  ASSERT_GT(reference.stats.deadline_sheds, 0u);
  std::size_t degraded = 0;
  for (std::size_t r = 1; r < reference.rung_served.size(); ++r) {
    degraded += reference.rung_served[r];
  }
  ASSERT_GT(degraded, 0u);
  ASSERT_GT(reference.rung_served[0], 0u);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    core::SetNumThreads(threads);
    const QueuedRun got =
        DriveQueued(model, trace, config, /*serve_every=*/20,
                    /*batch_cost_ns=*/800000, /*stall_at=*/10,
                    /*stall_ns=*/5000000);
    ASSERT_TRUE(SameOutcomes(reference.outcomes, got.outcomes))
        << "threads=" << threads;
    ASSERT_EQ(reference.rung_served, got.rung_served) << "threads=" << threads;
    EXPECT_EQ(reference.stats.queue_sheds, got.stats.queue_sheds);
    EXPECT_EQ(reference.stats.deadline_sheds, got.stats.deadline_sheds);
  }
  core::SetNumThreads(0);
}

TEST(Resilience, DeadlineShedLeavesSessionStateUntouched) {
  seqrec::SasRecModel* model = Fixture().model();
  ServeConfig config;
  config.top_k = 6;
  const std::size_t items = Fixture().data.dataset.num_items;

  RecommendService shed_service(model, config);
  RecommendService control(model, config);
  const std::uint64_t session = 5;
  for (std::size_t i : {std::size_t{3} % items, std::size_t{9} % items}) {
    (void)shed_service.Handle(ServeRequest{session, i});
    (void)control.Handle(ServeRequest{session, i});
  }

  // A request for the same session whose deadline passes before service: it
  // must be dropped with a typed status and must NOT advance the session.
  std::vector<ServeOutcome> outcomes;
  ServeRequest overdue;
  overdue.session_id = session;
  overdue.item = 1 % items;
  overdue.arrival_ns = 100;
  overdue.deadline_ns = 200;
  shed_service.Enqueue(overdue, &outcomes);
  shed_service.ServeQueued(/*now_ns=*/500, &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].kind, ServeOutcomeKind::kShedDeadline);
  EXPECT_EQ(outcomes[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(shed_service.stats().deadline_sheds, 1u);

  const ServeResponse after =
      shed_service.Handle(ServeRequest{session, 7 % items});
  const ServeResponse expected =
      control.Handle(ServeRequest{session, 7 % items});
  EXPECT_EQ(after.session_len, expected.session_len);
  ASSERT_TRUE(SameResponses({after}, {expected}));
}

TEST(Resilience, PopularityRungMatchesHeadSetTieBreak) {
  // A single-rung popularity ladder: responses must rank by (count desc,
  // item id asc) — the eval::PopularityHeadSet tie-break — after history
  // exclusion, with no model scoring involved.
  seqrec::SasRecModel* model = Fixture().model();
  const std::size_t items = Fixture().data.dataset.num_items;
  ServeConfig config;
  config.top_k = 7;
  config.ladder.rungs = ParseLadderSpec("popularity").ValueOrDie();
  std::vector<std::size_t> popularity(items);
  for (std::size_t i = 0; i < items; ++i) popularity[i] = (i * 13) % 5;
  config.popularity = popularity;

  RecommendService service(model, config);
  const std::size_t consumed = 2 % items;
  std::vector<ServeOutcome> outcomes;
  ServeRequest request;
  request.session_id = 77;
  request.item = consumed;
  service.Enqueue(request, &outcomes);
  service.ServeQueued(/*now_ns=*/0, &outcomes);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_EQ(outcomes[0].kind, ServeOutcomeKind::kServed);
  const std::vector<ScoredItem>& topk = outcomes[0].response.topk;
  ASSERT_EQ(topk.size(), config.top_k);

  // Expected order, computed independently.
  std::vector<std::size_t> ids(items);
  for (std::size_t i = 0; i < items; ++i) ids[i] = i;
  std::stable_sort(ids.begin(), ids.end(),
                   [&popularity](std::size_t a, std::size_t b) {
                     if (popularity[a] != popularity[b]) {
                       return popularity[a] > popularity[b];
                     }
                     return a < b;
                   });
  std::vector<std::size_t> expected;
  for (std::size_t id : ids) {
    if (id == consumed) continue;  // history exclusion
    expected.push_back(id);
    if (expected.size() == config.top_k) break;
  }
  for (std::size_t k = 0; k < config.top_k; ++k) {
    EXPECT_EQ(topk[k].item, expected[k]) << "k=" << k;
  }

  // Consistency with the eval-side head set: the served top-K (plus the
  // excluded item) sits inside the popularity head of the same size.
  const std::vector<char> head =
      eval::PopularityHeadSet(popularity, config.top_k + 1);
  for (const ScoredItem& hit : topk) {
    EXPECT_TRUE(head[hit.item]) << "item " << hit.item
                                << " served but outside the popularity head";
  }
}

TEST(Ingest, RejectsPoisonedFeaturesIntoQuarantineWithTypedStatus) {
  auto rec = FreshModel();
  ServeConfig config;
  config.refit_every = 100;
  config.ingest_max_abs = 10.0;
  RecommendService service(rec->model(), config);
  const Matrix& raw = Fixture().data.dataset.text_embeddings;
  ASSERT_TRUE(
      service.EnableIngest(raw, WhiteningKind::kZca, /*epsilon=*/1e-5).ok());
  const std::size_t items_before = service.num_items();

  std::vector<double> nan_row = raw.Row(0);
  nan_row[nan_row.size() / 2] = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> inf_row = raw.Row(1 % raw.rows());
  inf_row[0] = std::numeric_limits<double>::infinity();
  std::vector<double> big_row = raw.Row(2 % raw.rows());
  big_row.back() = -100.0;  // |value| > ingest_max_abs
  const std::vector<double> short_row(raw.cols() - 1, 0.0);

  std::size_t rejected = 0;
  const std::vector<const std::vector<double>*> poisons = {
      &nan_row, &inf_row, &big_row, &short_row};
  for (const std::vector<double>* poison : poisons) {
    const Status status = service.IngestItem(*poison);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(status.message().empty());
    ++rejected;
    EXPECT_EQ(service.stats().quarantined, rejected);
    ASSERT_EQ(service.quarantine().size(), rejected);
    EXPECT_EQ(service.quarantine().back().reason, status.message());
    EXPECT_EQ(service.pending_ingests(), 0u);
    EXPECT_EQ(service.num_items(), items_before);
  }

  // Rejected rows leave the whitening moments bitwise untouched: a service
  // that saw the poison interleaved with valid rows must refit to exactly
  // the state of one that saw only the valid rows.
  auto rec_clean = FreshModel();
  RecommendService clean(rec_clean->model(), config);
  ASSERT_TRUE(
      clean.EnableIngest(raw, WhiteningKind::kZca, /*epsilon=*/1e-5).ok());
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_FALSE(service.IngestItem(nan_row).ok());
    ASSERT_TRUE(service.IngestItem(raw.Row(i % raw.rows())).ok());
    ASSERT_TRUE(clean.IngestItem(raw.Row(i % raw.rows())).ok());
  }
  ASSERT_TRUE(service.RefitNow().ok());
  ASSERT_TRUE(clean.RefitNow().ok());
  const ServeRequest probe{3, 0};
  ASSERT_TRUE(SameResponses({service.Handle(probe)}, {clean.Handle(probe)}));
}

TEST(Ingest, RefitGuardRefusesIllConditionedRefitAndRollsBack) {
  const Matrix& raw = Fixture().data.dataset.text_embeddings;

  // Eigenvalue floor set impossibly high: the guard must refuse the refit,
  // quarantine the pending rows, and leave serving on the pre-ingest state.
  auto rec = FreshModel();
  ServeConfig config;
  config.refit_every = 3;
  config.refit_eigen_floor = 1e9;
  RecommendService guarded(rec->model(), config);
  ASSERT_TRUE(
      guarded.EnableIngest(raw, WhiteningKind::kZca, /*epsilon=*/1e-5).ok());
  const std::size_t items_before = guarded.num_items();

  Status refit_status = Status::OK();
  for (std::size_t i = 0; i < config.refit_every; ++i) {
    refit_status = guarded.IngestItem(raw.Row(i));
  }
  ASSERT_FALSE(refit_status.ok());  // the boundary ingest surfaced the guard
  EXPECT_EQ(guarded.stats().refit_failures, 1u);
  EXPECT_EQ(guarded.stats().refits, 0u);
  EXPECT_EQ(guarded.table_version(), 0u);
  EXPECT_EQ(guarded.pending_ingests(), 0u);
  EXPECT_EQ(guarded.num_items(), items_before);
  ASSERT_EQ(guarded.quarantine().size(), config.refit_every);
  for (const QuarantinedFeature& q : guarded.quarantine()) {
    EXPECT_EQ(q.reason, "dropped by refit rollback");
  }

  // Serving is bitwise the pre-ingest computation.
  auto rec_control = FreshModel();
  RecommendService control(rec_control->model(), ServeConfig());
  const ServeRequest probe{11, 1 % items_before};
  ASSERT_TRUE(SameResponses({guarded.Handle(probe)}, {control.Handle(probe)}));

  // Condition-number variant trips with its own message.
  auto rec_cond = FreshModel();
  ServeConfig cond_config;
  cond_config.refit_every = 2;
  cond_config.refit_max_condition = 1.0;  // any real covariance exceeds this
  RecommendService conditioned(rec_cond->model(), cond_config);
  ASSERT_TRUE(conditioned.EnableIngest(raw, WhiteningKind::kZca, 1e-5).ok());
  Status cond_status = Status::OK();
  for (std::size_t i = 0; i < cond_config.refit_every; ++i) {
    cond_status = conditioned.IngestItem(raw.Row(i));
  }
  ASSERT_FALSE(cond_status.ok());
  EXPECT_EQ(cond_status.code(), StatusCode::kNumericalError);
  EXPECT_NE(cond_status.message().find("condition"), std::string::npos);
}

TEST(Ingest, ChaosRefitFailureRollsBackToLastGoodStateBitwise) {
  // With the chaos plane forcing every refit to fail mid-swap, the service
  // must restore the last good whitening transform, item table, and index —
  // bitwise: responses equal a control service that never ingested at all.
  const Matrix& raw = Fixture().data.dataset.text_embeddings;
  auto rec = FreshModel();
  ServeConfig config;
  config.refit_every = 4;
  RecommendService service(rec->model(), config);
  ASSERT_TRUE(
      service.EnableIngest(raw, WhiteningKind::kZca, /*epsilon=*/1e-5).ok());
  const std::size_t items_before = service.num_items();

  {
    ScopedChaosConfig chaos(/*seed=*/7, /*rate=*/1.0);
    Status refit_status = Status::OK();
    for (std::size_t i = 0; i < config.refit_every; ++i) {
      refit_status = service.IngestItem(raw.Row(i));
    }
    ASSERT_FALSE(refit_status.ok());
    EXPECT_EQ(refit_status.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(service.stats().rollbacks, 1u);
  EXPECT_EQ(service.stats().refit_failures, 1u);
  EXPECT_EQ(service.table_version(), 0u);
  EXPECT_EQ(service.num_items(), items_before);
  EXPECT_EQ(service.pending_ingests(), 0u);
  EXPECT_EQ(service.quarantine().size(), config.refit_every);

  auto rec_control = FreshModel();
  RecommendService control(rec_control->model(), ServeConfig());
  for (std::uint64_t session : {std::uint64_t{1}, std::uint64_t{2}}) {
    for (std::size_t step = 0; step < 3; ++step) {
      const ServeRequest probe{session, (session + step) % items_before};
      ASSERT_TRUE(
          SameResponses({service.Handle(probe)}, {control.Handle(probe)}))
          << "session=" << session << " step=" << step;
    }
  }

  // With chaos off, the same ingest stream commits: the rollback cost
  // nothing but the dropped rows.
  {
    ScopedChaosConfig chaos(/*seed=*/7, /*rate=*/0.0);
    for (std::size_t i = 0; i < config.refit_every; ++i) {
      ASSERT_TRUE(service.IngestItem(raw.Row(i)).ok());
    }
  }
  EXPECT_EQ(service.table_version(), 1u);
  EXPECT_EQ(service.num_items(), items_before + config.refit_every);
}

TEST(Soak, ChaosSoakServesCorrectlyOrShedsTyped) {
  // At fault rates 5% and 25%, every request offered to the admission path
  // ends exactly one way: served with a well-formed rung-labeled response,
  // or shed with a typed retriable status. Nothing is silently wrong.
  const Matrix& raw = Fixture().data.dataset.text_embeddings;
  for (const double rate : {0.05, 0.25}) {
    ScopedChaosConfig chaos(/*seed=*/1234, rate);
    auto rec = FreshModel();
    seqrec::SasRecModel* model = rec->model();
    ServeConfig config = OverloadConfig();
    config.refit_every = 8;
    RecommendService service(model, config);
    ASSERT_TRUE(
        service.EnableIngest(raw, WhiteningKind::kZca, /*epsilon=*/1e-5).ok());

    const std::vector<TraceRequest> trace = OverloadTrace(360, 4242);
    std::vector<ServeOutcome> outcomes;
    std::uint64_t now_ns = 0;
    std::size_t since_batch = 0;
    std::size_t ingested = 0;
    for (const TraceRequest& t : trace) {
      now_ns = std::max(now_ns, t.arrival_ns);
      ServeRequest request;
      request.session_id = t.session_id;
      request.item = t.item;
      request.arrival_ns = t.arrival_ns;
      request.deadline_ns = t.deadline_ns;
      service.Enqueue(request, &outcomes);
      if (++since_batch == 18) {
        since_batch = 0;
        service.ServeQueued(now_ns, &outcomes);
        now_ns += 700000;
        // Poisoned-ingest stream: every third row carries a NaN and must be
        // quarantined; the rest commit through (possibly chaos-failed)
        // refits.
        std::vector<double> feature = raw.Row(ingested % raw.rows());
        if (ingested % 3 == 1) {
          feature[ingested % feature.size()] =
              std::numeric_limits<double>::quiet_NaN();
          ASSERT_FALSE(service.IngestItem(feature).ok());
        } else {
          (void)service.IngestItem(feature);  // chaos may fail the refit
        }
        ++ingested;
      }
    }
    while (service.queue_depth() > 0) {
      service.ServeQueued(now_ns, &outcomes);
      now_ns += 700000;
    }

    ASSERT_EQ(outcomes.size(), trace.size()) << "rate=" << rate;
    std::size_t served = 0;
    std::size_t shed = 0;
    for (const ServeOutcome& outcome : outcomes) {
      switch (outcome.kind) {
        case ServeOutcomeKind::kServed:
          ++served;
          ASSERT_TRUE(outcome.status.ok());
          ASSERT_EQ(outcome.response.topk.size(), config.top_k);
          ASSERT_LT(outcome.response.rung, config.ladder.rungs.size());
          for (std::size_t k = 0; k < outcome.response.topk.size(); ++k) {
            ASSERT_TRUE(std::isfinite(outcome.response.topk[k].score));
            ASSERT_LT(outcome.response.topk[k].item, service.num_items());
            if (k > 0) {
              ASSERT_TRUE(linalg::RanksBefore(outcome.response.topk[k - 1],
                                              outcome.response.topk[k]));
            }
          }
          break;
        case ServeOutcomeKind::kShedOverflow:
          ++shed;
          ASSERT_EQ(outcome.status.code(), StatusCode::kUnavailable);
          break;
        case ServeOutcomeKind::kShedDeadline:
          ++shed;
          ASSERT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
          break;
      }
    }
    EXPECT_EQ(served + shed, trace.size()) << "rate=" << rate;
    EXPECT_GT(served, 0u);
    EXPECT_GT(service.stats().quarantined, 0u) << "rate=" << rate;
  }
}

TEST(LatencyHistogram, OverflowBucketAndResilienceCounters) {
  // The largest possible value must land inside the table (an off-by-one
  // here was once an out-of-bounds write) and round-trip through quantiles.
  const std::uint64_t huge = std::numeric_limits<std::uint64_t>::max();
  const std::size_t index = LatencyHistogram::BucketIndex(huge);
  ASSERT_LT(index, LatencyHistogram::NumBuckets());
  ASSERT_LE(LatencyHistogram::BucketLowerBound(index), huge);

  LatencyHistogram hist;
  hist.Record(huge);
  hist.Record(1);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.max(), huge);
  EXPECT_EQ(hist.Quantile(0.5), 1u);
  EXPECT_EQ(hist.Quantile(1.0), LatencyHistogram::BucketLowerBound(index));

  // Deadline-miss / shed counters ride the histogram and merge with it.
  LatencyHistogram a;
  a.RecordDeadlineMiss();
  a.RecordDeadlineMiss();
  a.RecordShed();
  LatencyHistogram b;
  b.RecordShed();
  b.Record(5);
  a.Merge(b);
  EXPECT_EQ(a.deadline_misses(), 2u);
  EXPECT_EQ(a.sheds(), 2u);
  EXPECT_EQ(a.count(), 1u);  // sheds never contribute a latency sample
  EXPECT_EQ(a.sum(), 5u);
}

TEST(DegradeHarness, SweepProducesValidSchemaCheckedJson) {
  // Tiny, ingest-free sweep on the shared fixture model (ingest would mutate
  // it). The harness itself re-seeds the chaos injector per point.
  ScopedChaosConfig chaos(/*seed=*/5, /*rate=*/0.25);
  DegradeConfig config;
  config.traffic.num_sessions = 12;
  config.traffic.num_requests = 150;
  config.traffic.mean_interarrival_ns = 100000;
  config.traffic.deadline_ns = 10000000;
  config.serve = OverloadConfig();
  config.serve.queue_max = 64;
  config.load_multipliers = {1.0, 4.0};
  const DegradeBenchResult result = RunDegradeHarness(
      Fixture().model(), Fixture().data.dataset.sequences,
      /*raw_features=*/nullptr, config);
  ASSERT_EQ(result.points.size(), 2u);
  for (const DegradePoint& point : result.points) {
    EXPECT_EQ(point.offered,
              point.served + point.shed_overflow + point.shed_deadline);
    EXPECT_GE(point.availability, 0.0);
    EXPECT_LE(point.availability, 1.0);
    ASSERT_EQ(point.rung_served.size(), config.serve.ladder.rungs.size());
    ASSERT_EQ(point.rung_ndcg.size(), point.rung_served.size());
    for (std::size_t r = 0; r < point.rung_served.size(); ++r) {
      if (point.rung_served[r] == 0) {
        EXPECT_EQ(point.rung_ndcg[r], -1.0);
      } else {
        EXPECT_GE(point.rung_ndcg[r], 0.0);
        EXPECT_LE(point.rung_ndcg[r], 1.0);
      }
    }
  }
  // Rung 0 serves against itself: where it served, quality is exactly 1.
  ASSERT_GT(result.points[0].rung_served[0], 0u);
  EXPECT_DOUBLE_EQ(result.points[0].rung_ndcg[0], 1.0);

  const std::string json = DegradeBenchJson(result);
  EXPECT_TRUE(ValidateDegradeBenchJson(json).ok())
      << ValidateDegradeBenchJson(json).message();
  // Availability can never exceed 1, so a floor above 1 must always reject:
  // the check-degrade gate's floor is actually enforced per point.
  EXPECT_FALSE(ValidateDegradeBenchJson(json, /*min_availability=*/1.01).ok());
}

TEST(DegradeHarness, SchemaCheckerRejectsMalformedDocuments) {
  EXPECT_FALSE(ValidateDegradeBenchJson("").ok());
  EXPECT_FALSE(ValidateDegradeBenchJson("[3]").ok());
  EXPECT_FALSE(ValidateDegradeBenchJson("{\"bench\": \"serving\"}").ok());

  const std::string valid =
      "{\"bench\": \"degrade\", \"catalog_items\": 10, \"ndcg_k\": 10, "
      "\"chaos\": {\"seed\": 1, \"rate\": 0.25}, \"traffic\": {}, "
      "\"sweep\": [{\"load_multiplier\": 1, \"offered\": 10, \"served\": 9, "
      "\"shed_overflow\": 1, \"shed_deadline\": 0, \"availability\": 0.9, "
      "\"deadline_miss_rate\": 0, \"p50_ns\": 10, \"p99_ns\": 20, "
      "\"quarantined\": 0, \"refit_failures\": 0, \"rollbacks\": 0, "
      "\"rung_served\": [9, 0], \"rung_ndcg\": [1, -1]}]}";
  ASSERT_TRUE(ValidateDegradeBenchJson(valid).ok())
      << ValidateDegradeBenchJson(valid).message();
  // The hand-built point has availability 0.9: the floor must reject it.
  EXPECT_FALSE(ValidateDegradeBenchJson(valid, /*min_availability=*/0.99).ok());

  auto mutate = [&valid](const std::string& from, const std::string& to) {
    std::string doc = valid;
    const std::size_t at = doc.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    doc.replace(at, from.size(), to);
    return doc;
  };
  // Accounting identity: offered != served + sheds.
  EXPECT_FALSE(
      ValidateDegradeBenchJson(mutate("\"served\": 9", "\"served\": 8")).ok());
  // Inverted percentiles.
  EXPECT_FALSE(
      ValidateDegradeBenchJson(mutate("\"p50_ns\": 10", "\"p50_ns\": 30"))
          .ok());
  // Out-of-range availability.
  EXPECT_FALSE(ValidateDegradeBenchJson(
                   mutate("\"availability\": 0.9", "\"availability\": 1.5"))
                   .ok());
  // Rung arrays of unequal length.
  EXPECT_FALSE(ValidateDegradeBenchJson(
                   mutate("\"rung_served\": [9, 0]", "\"rung_served\": [9]"))
                   .ok());
  // NDCG outside [0, 1] and not the -1 sentinel.
  EXPECT_FALSE(ValidateDegradeBenchJson(
                   mutate("\"rung_ndcg\": [1, -1]", "\"rung_ndcg\": [1, 2]"))
                   .ok());
  // Empty sweep.
  const std::string empty_sweep =
      "{\"bench\": \"degrade\", \"catalog_items\": 10, \"ndcg_k\": 10, "
      "\"chaos\": {\"seed\": 1, \"rate\": 0}, \"traffic\": {}, "
      "\"sweep\": []}";
  EXPECT_FALSE(ValidateDegradeBenchJson(empty_sweep).ok());
}

}  // namespace
}  // namespace serve
}  // namespace whitenrec
