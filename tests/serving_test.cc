// Online serving core contracts (ISSUE 6):
//  * the incremental session-cache forward (EncodeSequenceStep) is BITWISE
//    identical to the full batched eval forward at every prefix length up
//    to max_len truncation, across evictions and thread counts;
//  * micro-batched responses are bitwise identical to serving each request
//    alone, for every batch-window size, thread count, and cache capacity
//    (eviction is a cost event, never a correctness event);
//  * the synthetic traffic generator replays identical traces from a seed;
//  * the latency histogram reports exact quantiles on hand-computed
//    distributions in its unit-bucket region and merges associatively;
//  * the WHITENREC_SERVE_* env knobs parse strictly;
//  * the ingest path grows the catalog through an online whitening refit
//    without breaking serving.
// The *Soak* test doubles as the randomized-traffic TSan workload run by
// `make check-serve` (WHITENREC_SERVE_SOAK scales it up).

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "data/batcher.h"
#include "data/generator.h"
#include "linalg/rng.h"
#include "seqrec/baselines.h"
#include "seqrec/trainer.h"
#include "serve/harness.h"
#include "serve/latency_histogram.h"
#include "serve/service.h"
#include "serve/traffic.h"

namespace whitenrec {
namespace serve {
namespace {

using linalg::Matrix;
using linalg::ScoredItem;

const std::vector<std::size_t> kThreadCounts = {1, 4};

// Tiny dataset + untrained (random-init) WhitenRec model: the serving
// contracts are about bitwise reproducibility of the forward pass, which is
// independent of training.
struct ServingFixture {
  ServingFixture()
      : data(data::GenerateDataset(data::ToysProfile(0.05))),
        rec(seqrec::MakeWhitenRec(data.dataset, ModelConfig(), WConfig())) {}

  static seqrec::SasRecConfig ModelConfig() {
    seqrec::SasRecConfig config;
    config.hidden_dim = 16;
    config.num_blocks = 2;
    config.num_heads = 2;
    config.ffn_hidden = 32;
    config.max_len = 8;
    return config;
  }
  static WhitenRecConfig WConfig() {
    WhitenRecConfig config;
    config.out_dim = 16;
    return config;
  }

  seqrec::SasRecModel* model() { return rec->model(); }

  data::GeneratedData data;
  std::unique_ptr<seqrec::SasRecRecommender> rec;
};

ServingFixture& Fixture() {
  static ServingFixture* fixture = new ServingFixture();
  return *fixture;
}

// Ingest refits mutate the model's catalog in place, so tests that exercise
// it build a private model instead of touching the shared fixture.
std::unique_ptr<seqrec::SasRecRecommender> FreshModel() {
  return seqrec::MakeWhitenRec(Fixture().data.dataset,
                               ServingFixture::ModelConfig(),
                               ServingFixture::WConfig());
}

bool BitwiseEqualRows(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

bool SameResponses(const std::vector<ServeResponse>& a,
                   const std::vector<ServeResponse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].topk.size() != b[i].topk.size()) return false;
    if (a[i].session_len != b[i].session_len) return false;
    for (std::size_t k = 0; k < a[i].topk.size(); ++k) {
      if (a[i].topk[k].item != b[i].topk[k].item) return false;
      if (!BitwiseEqualRows(&a[i].topk[k].score, &b[i].topk[k].score, 1)) {
        return false;
      }
    }
  }
  return true;
}

// An unpadded single-sequence eval batch over `items`.
data::Batch MakeBatch(const std::vector<std::size_t>& items) {
  data::Batch batch;
  batch.batch_size = 1;
  batch.seq_len = items.size();
  batch.items = items;
  batch.input_mask.assign(items.size(), 1.0);
  batch.targets.assign(items.size(), 0);
  batch.target_weights.assign(items.size(), 0.0);
  batch.last_position = {items.size() - 1};
  batch.users = {0};
  return batch;
}

// ---------------------------------------------------------------------------
// Satellite 1: incremental forward parity.
// ---------------------------------------------------------------------------

TEST(IncrementalForward, BitwiseMatchesBatchedForwardAtEveryPrefix) {
  seqrec::SasRecModel* model = Fixture().model();
  const std::size_t max_len = model->config().max_len;
  const std::size_t hidden = model->config().hidden_dim;
  const Matrix v = model->EncodeItems(/*train=*/false);
  linalg::Rng rng(7);

  for (std::size_t threads : kThreadCounts) {
    core::SetNumThreads(threads);
    for (std::size_t len = 1; len <= max_len; ++len) {
      std::vector<std::size_t> items(len);
      for (std::size_t t = 0; t < len; ++t) {
        items[t] = rng.UniformInt(v.rows());
      }
      const Matrix h_full =
          model->EncodeSequences(MakeBatch(items), v, /*train=*/false);

      seqrec::SasRecModel::SessionStepState state;
      Matrix h_row;
      for (std::size_t t = 0; t < len; ++t) {
        model->EncodeSequenceStep(v, items[t], &state, &h_row);
        ASSERT_TRUE(BitwiseEqualRows(h_row.RowPtr(0), h_full.RowPtr(t),
                                     hidden))
            << "threads=" << threads << " len=" << len << " position=" << t;
      }
    }
  }
  core::SetNumThreads(0);
}

TEST(IncrementalForward, ReplayAfterClearMatchesUninterruptedSession) {
  // Eviction = losing the KV cache mid-session. Replaying the window into a
  // fresh cache must land bitwise on the uninterrupted session's state.
  seqrec::SasRecModel* model = Fixture().model();
  const std::size_t hidden = model->config().hidden_dim;
  const std::size_t max_len = model->config().max_len;
  const Matrix v = model->EncodeItems(/*train=*/false);
  linalg::Rng rng(11);
  std::vector<std::size_t> items(max_len);
  for (std::size_t t = 0; t < max_len; ++t) {
    items[t] = rng.UniformInt(v.rows());
  }

  for (std::size_t cut = 1; cut < max_len; ++cut) {
    seqrec::SasRecModel::SessionStepState uninterrupted;
    seqrec::SasRecModel::SessionStepState evicted;
    Matrix h_a;
    Matrix h_b;
    for (std::size_t t = 0; t < max_len; ++t) {
      model->EncodeSequenceStep(v, items[t], &uninterrupted, &h_a);
      if (t == cut) {
        // Simulate the eviction: drop state, replay the prefix.
        evicted.Clear();
        for (std::size_t r = 0; r < t; ++r) {
          model->EncodeSequenceStep(v, items[r], &evicted, &h_b);
        }
      }
      model->EncodeSequenceStep(v, items[t], &evicted, &h_b);
      ASSERT_TRUE(BitwiseEqualRows(h_a.RowPtr(0), h_b.RowPtr(0), hidden))
          << "cut=" << cut << " t=" << t;
    }
  }
}

TEST(IncrementalForward, TruncationShiftMatchesBatchedWindow) {
  // Streams longer than max_len: the service drops the oldest item and
  // replays. The replayed hidden state must equal the batched forward over
  // exactly the truncated window.
  seqrec::SasRecModel* model = Fixture().model();
  const std::size_t hidden = model->config().hidden_dim;
  const std::size_t max_len = model->config().max_len;
  const Matrix v = model->EncodeItems(/*train=*/false);
  linalg::Rng rng(13);
  std::vector<std::size_t> stream(3 * max_len);
  for (std::size_t t = 0; t < stream.size(); ++t) {
    stream[t] = rng.UniformInt(v.rows());
  }

  std::vector<std::size_t> window;
  seqrec::SasRecModel::SessionStepState state;
  Matrix h_step;
  for (std::size_t t = 0; t < stream.size(); ++t) {
    if (window.size() == max_len) {
      window.erase(window.begin());
      state.Clear();
    }
    window.push_back(stream[t]);
    if (state.len() + 1 != window.size()) {
      state.Clear();
      for (std::size_t r = 0; r + 1 < window.size(); ++r) {
        model->EncodeSequenceStep(v, window[r], &state, &h_step);
      }
    }
    model->EncodeSequenceStep(v, stream[t], &state, &h_step);

    const Matrix h_full =
        model->EncodeSequences(MakeBatch(window), v, /*train=*/false);
    ASSERT_TRUE(BitwiseEqualRows(h_step.RowPtr(0),
                                 h_full.RowPtr(window.size() - 1), hidden))
        << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Satellite 2: micro-batch determinism.
// ---------------------------------------------------------------------------

// Cuts a trace into micro-batches exactly like the harness batcher: same
// virtual window index, capped at max_batch.
std::vector<std::vector<ServeRequest>> CutBatches(
    const std::vector<TraceRequest>& trace, std::uint64_t window_ns,
    std::size_t max_batch) {
  std::vector<std::vector<ServeRequest>> batches;
  for (std::size_t i = 0; i < trace.size();) {
    std::vector<ServeRequest> batch;
    if (window_ns == 0) {
      batch.push_back(ServeRequest{trace[i].session_id, trace[i].item});
      ++i;
    } else {
      const std::uint64_t window = trace[i].arrival_ns / window_ns;
      while (i < trace.size() && trace[i].arrival_ns / window_ns == window &&
             batch.size() < max_batch) {
        batch.push_back(ServeRequest{trace[i].session_id, trace[i].item});
        ++i;
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::vector<ServeResponse> ServeTrace(seqrec::SasRecModel* model,
                                      const std::vector<TraceRequest>& trace,
                                      const ServeConfig& config,
                                      std::uint64_t window_ns,
                                      ServeStats* stats = nullptr) {
  RecommendService service(model, config);
  std::vector<ServeResponse> responses;
  responses.reserve(trace.size());
  for (const std::vector<ServeRequest>& batch :
       CutBatches(trace, window_ns, config.max_batch)) {
    std::vector<ServeResponse> out = service.HandleBatch(batch);
    for (ServeResponse& r : out) responses.push_back(std::move(r));
  }
  if (stats != nullptr) *stats = service.stats();
  return responses;
}

TEST(MicroBatching, CoalescedBitwiseEqualsSingleAtEveryWindowAndThreadCount) {
  seqrec::SasRecModel* model = Fixture().model();
  TrafficConfig traffic;
  traffic.num_sessions = 24;
  traffic.num_requests = 400;
  traffic.seed = 99;
  const std::vector<TraceRequest> trace =
      GenerateTrace(Fixture().data.dataset.sequences, traffic);

  ServeConfig config;
  config.top_k = 10;

  // Reference: every request served alone, single thread.
  core::SetNumThreads(1);
  const std::vector<ServeResponse> reference =
      ServeTrace(model, trace, config, /*window_ns=*/0);
  ASSERT_EQ(reference.size(), trace.size());
  for (const ServeResponse& r : reference) {
    ASSERT_EQ(r.topk.size(), config.top_k);
  }

  const std::vector<std::uint64_t> windows = {0, 1, 50000, 1000000,
                                              1000000000000ull};
  for (std::size_t threads : kThreadCounts) {
    core::SetNumThreads(threads);
    for (std::uint64_t window_ns : windows) {
      const std::vector<ServeResponse> got =
          ServeTrace(model, trace, config, window_ns);
      ASSERT_TRUE(SameResponses(reference, got))
          << "window_ns=" << window_ns << " threads=" << threads;
    }
  }
  core::SetNumThreads(0);
}

TEST(MicroBatching, EvictionIsCostNotCorrectness) {
  seqrec::SasRecModel* model = Fixture().model();
  TrafficConfig traffic;
  traffic.num_sessions = 16;
  traffic.num_requests = 300;
  traffic.seed = 5;
  const std::vector<TraceRequest> trace =
      GenerateTrace(Fixture().data.dataset.sequences, traffic);

  ServeConfig roomy;
  roomy.top_k = 8;
  roomy.max_cached_sessions = 1 << 20;
  ServeStats roomy_stats;
  const std::vector<ServeResponse> reference =
      ServeTrace(model, trace, roomy, /*window_ns=*/200000, &roomy_stats);
  EXPECT_EQ(roomy_stats.evictions, 0u);

  for (std::size_t cap : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
    ServeConfig tight = roomy;
    tight.max_cached_sessions = cap;
    ServeStats tight_stats;
    const std::vector<ServeResponse> got =
        ServeTrace(model, trace, tight, /*window_ns=*/200000, &tight_stats);
    ASSERT_TRUE(SameResponses(reference, got)) << "cap=" << cap;
    EXPECT_GT(tight_stats.evictions, 0u) << "cap=" << cap;
    EXPECT_GT(tight_stats.recomputes, roomy_stats.recomputes) << "cap=" << cap;
  }
}

TEST(MicroBatching, ExcludesSessionHistoryFromRecommendations) {
  seqrec::SasRecModel* model = Fixture().model();
  ServeConfig config;
  config.top_k = 5;
  RecommendService service(model, config);
  const std::uint64_t session = 42;
  std::vector<std::size_t> consumed;
  linalg::Rng rng(3);
  for (std::size_t t = 0; t < model->config().max_len; ++t) {
    const std::size_t item = rng.UniformInt(service.num_items());
    consumed.push_back(item);
    const ServeResponse response =
        service.Handle(ServeRequest{session, item});
    ASSERT_EQ(response.session_len, consumed.size());
    for (const ScoredItem& hit : response.topk) {
      for (std::size_t seen : consumed) {
        EXPECT_NE(hit.item, seen) << "recommended an already-consumed item";
      }
    }
  }
}

TEST(Traffic, SameSeedReplaysIdenticalTrace) {
  TrafficConfig config;
  config.num_sessions = 32;
  config.num_requests = 500;
  config.seed = 1234;
  const auto& sequences = Fixture().data.dataset.sequences;
  const std::vector<TraceRequest> a = GenerateTrace(sequences, config);
  const std::vector<TraceRequest> b = GenerateTrace(sequences, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].arrival_ns, b[i].arrival_ns);
    ASSERT_EQ(a[i].session_id, b[i].session_id);
    ASSERT_EQ(a[i].item, b[i].item);
  }

  config.seed = 4321;
  const std::vector<TraceRequest> c = GenerateTrace(sequences, config);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].arrival_ns != c[i].arrival_ns ||
              a[i].session_id != c[i].session_id || a[i].item != c[i].item;
  }
  EXPECT_TRUE(differs) << "different seeds produced the same trace";
}

TEST(Traffic, ArrivalsStrictlyIncreaseAndZipfSkews) {
  TrafficConfig config;
  config.num_sessions = 50;
  config.num_requests = 2000;
  config.zipf_exponent = 1.2;
  const auto& sequences = Fixture().data.dataset.sequences;
  const std::vector<TraceRequest> trace = GenerateTrace(sequences, config);
  std::vector<std::size_t> hits(config.num_sessions, 0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) ASSERT_GT(trace[i].arrival_ns, trace[i - 1].arrival_ns);
    ASSERT_LT(trace[i].session_id, config.num_sessions);
    ++hits[trace[i].session_id];
  }
  // Session 0 must dominate the tail under a Zipf law.
  EXPECT_GT(hits[0], hits[config.num_sessions - 1] * 2);
}

// ---------------------------------------------------------------------------
// Satellite 3: latency histogram.
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, ExactQuantilesOnHandComputedDistribution) {
  LatencyHistogram hist;
  for (std::uint64_t v = 1; v <= 100; ++v) hist.Record(v);
  // rank = ceil(q * 100): p50 -> 50th smallest, p99 -> 99th, p999 -> 100th.
  EXPECT_EQ(hist.Quantile(0.50), 50u);
  EXPECT_EQ(hist.Quantile(0.99), 99u);
  EXPECT_EQ(hist.Quantile(0.999), 100u);
  EXPECT_EQ(hist.Quantile(0.0), 1u);
  EXPECT_EQ(hist.Quantile(1.0), 100u);
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.sum(), 5050u);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), 100u);
  EXPECT_DOUBLE_EQ(hist.Mean(), 50.5);

  // Skewed distribution: 90 fast, 9 medium, 1 slow.
  LatencyHistogram skew;
  for (int i = 0; i < 90; ++i) skew.Record(10);
  for (int i = 0; i < 9; ++i) skew.Record(100);
  skew.Record(200);
  EXPECT_EQ(skew.Quantile(0.50), 10u);
  EXPECT_EQ(skew.Quantile(0.90), 10u);
  EXPECT_EQ(skew.Quantile(0.99), 100u);
  EXPECT_EQ(skew.Quantile(0.999), 200u);
}

TEST(LatencyHistogram, EmptyAndSingleValue) {
  LatencyHistogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.Quantile(0.5), 0u);
  EXPECT_EQ(empty.min(), 0u);
  EXPECT_EQ(empty.max(), 0u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);

  LatencyHistogram one;
  one.Record(77);
  for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(one.Quantile(q), 77u) << "q=" << q;
  }
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative) {
  linalg::Rng rng(2024);
  auto fill = [&rng](LatencyHistogram* h, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      // Mix unit-bucket and log-bucket regions up to ~17 minutes in ns.
      const std::uint64_t v = rng.NextU64() % 1000000000000ull;
      h->Record(v);
    }
  };
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram c;
  fill(&a, 500);
  fill(&b, 300);
  fill(&c, 700);

  LatencyHistogram ab_c = a;  // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  LatencyHistogram bc = b;  // a + (b + c)
  bc.Merge(c);
  LatencyHistogram a_bc = a;
  a_bc.Merge(bc);
  LatencyHistogram cba = c;  // commuted order
  cba.Merge(b);
  cba.Merge(a);

  for (const LatencyHistogram* other : {&a_bc, &cba}) {
    EXPECT_EQ(ab_c.count(), other->count());
    EXPECT_EQ(ab_c.sum(), other->sum());
    EXPECT_EQ(ab_c.min(), other->min());
    EXPECT_EQ(ab_c.max(), other->max());
    ASSERT_EQ(ab_c.buckets(), other->buckets());
  }
  // Identical bucket contents imply identical quantiles.
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(ab_c.Quantile(q), a_bc.Quantile(q));
  }
}

TEST(LatencyHistogram, BucketBoundsRoundTripWithBoundedRelativeError) {
  linalg::Rng rng(55);
  std::vector<std::uint64_t> probes = {0,       1,   255, 256, 257,
                                       511,     512, 1023, 1024, 65535,
                                       1u << 30};
  for (std::size_t i = 0; i < 200; ++i) {
    probes.push_back(rng.NextU64() % 1000000000000ull);
  }
  for (std::uint64_t v : probes) {
    const std::size_t index = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(index, LatencyHistogram::NumBuckets());
    const std::uint64_t lower = LatencyHistogram::BucketLowerBound(index);
    ASSERT_LE(lower, v) << "v=" << v;
    if (v < LatencyHistogram::kExactMax) {
      ASSERT_EQ(lower, v);
    } else {
      // Bucket width <= lower / kLogSubBuckets in the log region.
      ASSERT_LE(v - lower, lower / LatencyHistogram::kLogSubBuckets)
          << "v=" << v;
    }
    if (index + 1 < LatencyHistogram::NumBuckets()) {
      ASSERT_GT(LatencyHistogram::BucketLowerBound(index + 1), v) << "v=" << v;
    }
  }
}

TEST(LatencyHistogram, QuantilesAreMonotone) {
  linalg::Rng rng(77);
  LatencyHistogram hist;
  for (std::size_t i = 0; i < 5000; ++i) {
    hist.Record(rng.NextU64() % 100000000ull);
  }
  std::uint64_t prev = 0;
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t value = hist.Quantile(q);
    EXPECT_GE(value, prev) << "q=" << q;
    prev = value;
  }
}

// ---------------------------------------------------------------------------
// Satellite 4 support: env knob parsing.
// ---------------------------------------------------------------------------

TEST(ServeConfig, FromEnvOverlaysKnobs) {
  ASSERT_EQ(setenv("WHITENREC_SERVE_TOPK", "25", 1), 0);
  ASSERT_EQ(setenv("WHITENREC_SERVE_WINDOW_NS", "777", 1), 0);
  ASSERT_EQ(setenv("WHITENREC_SERVE_MAX_BATCH", "33", 1), 0);
  ASSERT_EQ(setenv("WHITENREC_SERVE_CACHE_SESSIONS", "99", 1), 0);
  ASSERT_EQ(setenv("WHITENREC_SERVE_REFIT_EVERY", "5", 1), 0);
  const ServeConfig config = ServeConfig::FromEnv();
  EXPECT_EQ(config.top_k, 25u);
  EXPECT_EQ(config.batch_window_ns, 777u);
  EXPECT_EQ(config.max_batch, 33u);
  EXPECT_EQ(config.max_cached_sessions, 99u);
  EXPECT_EQ(config.refit_every, 5u);
  for (const char* name :
       {"WHITENREC_SERVE_TOPK", "WHITENREC_SERVE_WINDOW_NS",
        "WHITENREC_SERVE_MAX_BATCH", "WHITENREC_SERVE_CACHE_SESSIONS",
        "WHITENREC_SERVE_REFIT_EVERY"}) {
    unsetenv(name);
  }
  const ServeConfig defaults = ServeConfig::FromEnv();
  EXPECT_EQ(defaults.top_k, ServeConfig().top_k);
  EXPECT_EQ(defaults.batch_window_ns, ServeConfig().batch_window_ns);
}

// ---------------------------------------------------------------------------
// Ingest path: online whitening refit.
// ---------------------------------------------------------------------------

TEST(Ingest, GrowsCatalogThroughOnlineWhiteningRefit) {
  auto rec = FreshModel();
  seqrec::SasRecModel* model = rec->model();
  ServeConfig config;
  config.top_k = 5;
  config.refit_every = 4;
  RecommendService service(model, config);
  const std::size_t before = service.num_items();

  const Matrix& raw = Fixture().data.dataset.text_embeddings;
  ASSERT_TRUE(service
                  .EnableIngest(raw, WhiteningKind::kZca, /*epsilon=*/1e-5)
                  .ok());

  // Warm a session, then ingest through a refit boundary.
  const ServeResponse warm1 =
      service.Handle(ServeRequest{7, 0});
  const ServeResponse warm2 = service.Handle(ServeRequest{7, 1 % before});
  EXPECT_FALSE(warm1.incremental);
  EXPECT_TRUE(warm2.incremental);

  linalg::Rng rng(21);
  for (std::size_t i = 0; i < config.refit_every; ++i) {
    std::vector<double> feature = raw.Row(i % raw.rows());
    for (double& x : feature) x += rng.Gaussian() * 0.05;
    ASSERT_TRUE(service.IngestItem(feature).ok()) << "i=" << i;
  }
  EXPECT_EQ(service.num_items(), before + config.refit_every);
  EXPECT_EQ(service.pending_ingests(), 0u);
  EXPECT_EQ(service.stats().refits, 1u);

  // The refit invalidated every cached session state: the next request
  // replays the window (recompute), then the session is warm again.
  const ServeResponse after = service.Handle(ServeRequest{7, 0});
  EXPECT_FALSE(after.incremental);
  const ServeResponse warm3 = service.Handle(ServeRequest{7, 1 % before});
  EXPECT_TRUE(warm3.incremental);
  ASSERT_EQ(after.topk.size(), config.top_k);
  for (const ScoredItem& hit : after.topk) {
    EXPECT_TRUE(std::isfinite(hit.score));
    EXPECT_LT(hit.item, service.num_items());
  }

  // New items are scorable: request one of them directly.
  const ServeResponse on_new =
      service.Handle(ServeRequest{8, before});  // first ingested item
  EXPECT_EQ(on_new.topk.size(), config.top_k);

  // Dimension mismatch is rejected.
  EXPECT_FALSE(service.IngestItem(std::vector<double>(raw.cols() + 1, 0.0))
                   .ok());
}

TEST(Ingest, RequiresTextFeatureEncoder) {
  auto id_rec = seqrec::MakeSasRecId(Fixture().data.dataset,
                                     ServingFixture::ModelConfig());
  RecommendService service(id_rec->model(), ServeConfig());
  const Status armed = service.EnableIngest(
      Fixture().data.dataset.text_embeddings, WhiteningKind::kZca, 1e-5);
  EXPECT_FALSE(armed.ok());
  EXPECT_FALSE(service.IngestItem(std::vector<double>(4, 0.0)).ok());
}

// ---------------------------------------------------------------------------
// Harness + BENCH_serving.json schema.
// ---------------------------------------------------------------------------

TEST(Harness, SweepProducesValidSchemaCheckedJson) {
  seqrec::SasRecModel* model = Fixture().model();
  HarnessConfig config;
  config.traffic.num_sessions = 12;
  config.traffic.num_requests = 120;
  config.batch_windows_ns = {0, 500000};
  config.thread_counts = {1, 2};
  const ServingBenchResult result = RunServingHarness(
      model, Fixture().data.dataset.sequences, config);
  ASSERT_EQ(result.points.size(), 4u);
  for (const SweepPoint& point : result.points) {
    EXPECT_GT(point.qps, 0.0);
    EXPECT_LE(point.p50_ns, point.p99_ns);
    EXPECT_LE(point.p99_ns, point.p999_ns);
    EXPECT_EQ(point.num_batches > 0, true);
  }
  // Coalescing windows can only grow the mean batch size.
  EXPECT_GE(result.points[1].mean_batch_size, result.points[0].mean_batch_size);

  const std::string json = ServingBenchJson(result);
  EXPECT_TRUE(ValidateServingBenchJson(json).ok())
      << ValidateServingBenchJson(json).message();
}

TEST(Harness, SchemaCheckerRejectsMalformedDocuments) {
  EXPECT_FALSE(ValidateServingBenchJson("").ok());
  EXPECT_FALSE(ValidateServingBenchJson("not json at all").ok());
  EXPECT_FALSE(ValidateServingBenchJson("[1, 2, 3]").ok());
  EXPECT_FALSE(ValidateServingBenchJson("{\"bench\": \"serving\"}").ok());
  // Wrong bench tag.
  EXPECT_FALSE(
      ValidateServingBenchJson(
          "{\"bench\": \"other\", \"catalog_items\": 1, \"hidden_dim\": 1, "
          "\"top_k\": 1, \"traffic\": {}, \"sweep\": []}")
          .ok());
  // Complete but with inverted percentiles: must be rejected.
  const std::string inverted =
      "{\"bench\": \"serving\", \"catalog_items\": 10, \"hidden_dim\": 4, "
      "\"top_k\": 2, \"traffic\": {\"num_sessions\": 1, \"num_requests\": 1, "
      "\"zipf_exponent\": 1, \"mean_interarrival_ns\": 1, \"seed\": 1}, "
      "\"sweep\": [{\"batch_window_ns\": 0, \"threads\": 1, \"qps\": 1, "
      "\"p50_ns\": 100, \"p99_ns\": 50, \"p999_ns\": 60, \"mean_ns\": 1, "
      "\"num_batches\": 1, \"mean_batch_size\": 1, \"cache_hit_rate\": 0, "
      "\"service_seconds\": 1}]}";
  const Status status = ValidateServingBenchJson(inverted);
  EXPECT_FALSE(status.ok());
  // An empty sweep is also invalid.
  const std::string empty_sweep =
      "{\"bench\": \"serving\", \"catalog_items\": 10, \"hidden_dim\": 4, "
      "\"top_k\": 2, \"traffic\": {\"num_sessions\": 1, \"num_requests\": 1, "
      "\"zipf_exponent\": 1, \"mean_interarrival_ns\": 1, \"seed\": 1}, "
      "\"sweep\": []}";
  EXPECT_FALSE(ValidateServingBenchJson(empty_sweep).ok());
}

// ---------------------------------------------------------------------------
// Randomized-traffic soak: the check-serve TSan workload. Scaled up via
// WHITENREC_SERVE_SOAK (request multiplier); small by default so the tier-1
// run stays fast.
// ---------------------------------------------------------------------------

TEST(Soak, RandomizedTrafficWithIngestStaysWellFormed) {
  auto rec = FreshModel();
  seqrec::SasRecModel* model = rec->model();
  const char* soak = std::getenv("WHITENREC_SERVE_SOAK");
  const std::size_t multiplier =
      soak != nullptr ? static_cast<std::size_t>(std::atoi(soak)) : 1;
  ASSERT_GE(multiplier, 1u);

  TrafficConfig traffic;
  traffic.num_sessions = 40;
  traffic.num_requests = 600 * multiplier;
  traffic.zipf_exponent = 1.1;
  traffic.seed = 31337;
  const std::vector<TraceRequest> trace =
      GenerateTrace(Fixture().data.dataset.sequences, traffic);

  ServeConfig config;
  config.top_k = 10;
  config.max_cached_sessions = 8;  // force steady eviction pressure
  config.max_batch = 32;
  config.refit_every = 64;
  RecommendService service(model, config);
  const Matrix& raw = Fixture().data.dataset.text_embeddings;
  ASSERT_TRUE(
      service.EnableIngest(raw, WhiteningKind::kZca, /*epsilon=*/1e-5).ok());

  linalg::Rng rng(8);
  std::size_t served = 0;
  const std::vector<std::vector<ServeRequest>> batches =
      CutBatches(trace, /*window_ns=*/250000, config.max_batch);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const std::vector<ServeResponse> responses =
        service.HandleBatch(batches[b]);
    ASSERT_EQ(responses.size(), batches[b].size());
    for (const ServeResponse& response : responses) {
      ASSERT_EQ(response.topk.size(), config.top_k);
      for (std::size_t k = 1; k < response.topk.size(); ++k) {
        // Canonical ranking order.
        ASSERT_TRUE(linalg::RanksBefore(response.topk[k - 1],
                                        response.topk[k]));
      }
      for (const ScoredItem& hit : response.topk) {
        ASSERT_TRUE(std::isfinite(hit.score));
        ASSERT_LT(hit.item, service.num_items());
      }
    }
    served += responses.size();
    // Interleave catalog growth with serving.
    if (b % 7 == 3) {
      std::vector<double> feature = raw.Row(rng.UniformInt(raw.rows()));
      for (double& x : feature) x += rng.Gaussian() * 0.02;
      ASSERT_TRUE(service.IngestItem(feature).ok());
    }
  }
  EXPECT_EQ(served, trace.size());
  EXPECT_GT(service.stats().evictions, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace whitenrec
