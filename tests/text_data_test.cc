#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/batcher.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/split.h"
#include "linalg/stats.h"
#include "text/catalog.h"
#include "text/sim_plm.h"
#include "text/vocab.h"

namespace whitenrec {
namespace {

using linalg::Matrix;
using linalg::Rng;

// ---------------------------------------------------------------------------
// Vocab
// ---------------------------------------------------------------------------

TEST(VocabTest, GetOrAddAssignsDenseIds) {
  text::Vocab vocab;
  EXPECT_EQ(vocab.GetOrAdd("apple"), 0u);
  EXPECT_EQ(vocab.GetOrAdd("banana"), 1u);
  EXPECT_EQ(vocab.GetOrAdd("apple"), 0u);
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabTest, FindMissingReturnsNotFound) {
  text::Vocab vocab;
  EXPECT_EQ(vocab.Find("nope"), text::Vocab::kNotFound);
}

TEST(VocabTest, TokenizeLowercasesAndSplits) {
  text::Vocab vocab;
  const auto ids = vocab.Tokenize("Hello World hello", /*add_new=*/true);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], ids[2]);  // "Hello" == "hello"
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabTest, TokenizeWithoutAddSkipsUnknown) {
  text::Vocab vocab;
  vocab.GetOrAdd("known");
  const auto ids = vocab.Tokenize("known unknown", /*add_new=*/false);
  EXPECT_EQ(ids.size(), 1u);
}

TEST(VocabTest, TokenString) {
  text::Vocab vocab;
  const auto id = vocab.GetOrAdd("token");
  EXPECT_EQ(vocab.TokenString(id), "token");
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

text::CatalogConfig SmallCatalogConfig() {
  text::CatalogConfig config;
  config.num_items = 80;
  config.num_categories = 5;
  config.num_brands = 8;
  config.latent_dim = 4;
  config.topic_vocab_size = 60;
  config.title_len = 4;
  return config;
}

TEST(CatalogTest, GeneratesRequestedItems) {
  Rng rng(1);
  const text::Catalog catalog = text::GenerateCatalog(SmallCatalogConfig(), &rng);
  EXPECT_EQ(catalog.items.size(), 80u);
  EXPECT_EQ(catalog.latents.rows(), 80u);
  EXPECT_EQ(catalog.latents.cols(), 4u);
}

TEST(CatalogTest, CategoriesAndBrandsInRange) {
  Rng rng(2);
  const text::Catalog catalog = text::GenerateCatalog(SmallCatalogConfig(), &rng);
  for (const auto& item : catalog.items) {
    EXPECT_LT(item.category, 5u);
    EXPECT_LT(item.brand, 8u);
    EXPECT_FALSE(item.tokens.empty());
  }
}

TEST(CatalogTest, TokenLatentsCoverVocab) {
  Rng rng(3);
  const text::Catalog catalog = text::GenerateCatalog(SmallCatalogConfig(), &rng);
  EXPECT_EQ(catalog.token_latents.rows(), catalog.vocab.size());
  EXPECT_EQ(catalog.token_latents.cols(), 4u);
}

TEST(CatalogTest, DeterministicGivenSeed) {
  Rng rng1(7), rng2(7);
  const text::Catalog a = text::GenerateCatalog(SmallCatalogConfig(), &rng1);
  const text::Catalog b = text::GenerateCatalog(SmallCatalogConfig(), &rng2);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].title, b.items[i].title);
    EXPECT_EQ(a.items[i].category, b.items[i].category);
  }
}

TEST(CatalogTest, SameCategoryItemsCloserInLatentSpace) {
  Rng rng(4);
  text::CatalogConfig config = SmallCatalogConfig();
  config.num_items = 120;
  const text::Catalog catalog = text::GenerateCatalog(config, &rng);
  double same_sum = 0.0, diff_sum = 0.0;
  std::size_t same_n = 0, diff_n = 0;
  for (std::size_t i = 0; i < catalog.items.size(); ++i) {
    for (std::size_t j = i + 1; j < catalog.items.size(); ++j) {
      const double cosine = linalg::CosineSimilarity(catalog.latents.Row(i),
                                                     catalog.latents.Row(j));
      if (catalog.items[i].category == catalog.items[j].category) {
        same_sum += cosine;
        ++same_n;
      } else {
        diff_sum += cosine;
        ++diff_n;
      }
    }
  }
  EXPECT_GT(same_sum / static_cast<double>(same_n),
            diff_sum / static_cast<double>(diff_n) + 0.1);
}

// ---------------------------------------------------------------------------
// SimPLM
// ---------------------------------------------------------------------------

TEST(SimPlmTest, EmbeddingShape) {
  Rng rng(5);
  const text::Catalog catalog = text::GenerateCatalog(SmallCatalogConfig(), &rng);
  text::SimPlmConfig config;
  config.embed_dim = 16;
  text::SimPlm plm(catalog, config, &rng);
  const Matrix x = plm.EncodeItems(catalog);
  EXPECT_EQ(x.rows(), 80u);
  EXPECT_EQ(x.cols(), 16u);
}

TEST(SimPlmTest, CalibratesMeanCosineToTarget) {
  // The central property: SimPLM reproduces BERT's ~0.85 mean pairwise
  // cosine (paper Sec. III-B reports 0.84-0.85 on all three datasets).
  Rng rng(6);
  const text::Catalog catalog = text::GenerateCatalog(SmallCatalogConfig(), &rng);
  text::SimPlmConfig config;
  config.embed_dim = 16;
  config.target_mean_cosine = 0.85;
  text::SimPlm plm(catalog, config, &rng);
  const Matrix x = plm.EncodeItems(catalog);
  Rng measure(99);
  EXPECT_NEAR(linalg::MeanPairwiseCosine(x, &measure), 0.85, 0.03);
}

TEST(SimPlmTest, DifferentTargetsAchieved) {
  Rng rng(7);
  const text::Catalog catalog = text::GenerateCatalog(SmallCatalogConfig(), &rng);
  for (double target : {0.6, 0.9}) {
    Rng local(7);
    text::SimPlmConfig config;
    config.embed_dim = 16;
    config.target_mean_cosine = target;
    text::SimPlm plm(catalog, config, &local);
    const Matrix x = plm.EncodeItems(catalog);
    Rng measure(100);
    EXPECT_NEAR(linalg::MeanPairwiseCosine(x, &measure), target, 0.05);
  }
}

TEST(SimPlmTest, SemanticStructureSurvivesDegeneration) {
  // Items of the same category must stay closer than cross-category pairs
  // even inside the anisotropic cone — otherwise whitening could not recover
  // useful semantics.
  Rng rng(8);
  text::CatalogConfig cconfig = SmallCatalogConfig();
  cconfig.num_items = 100;
  const text::Catalog catalog = text::GenerateCatalog(cconfig, &rng);
  text::SimPlmConfig config;
  config.embed_dim = 16;
  text::SimPlm plm(catalog, config, &rng);
  Matrix x = plm.EncodeItems(catalog);
  // Compare *centered* embeddings (removing the common direction).
  linalg::CenterColumns(&x);
  double same = 0.0, diff = 0.0;
  std::size_t same_n = 0, diff_n = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = i + 1; j < 100; ++j) {
      const double cosine = linalg::CosineSimilarity(x.Row(i), x.Row(j));
      if (catalog.items[i].category == catalog.items[j].category) {
        same += cosine;
        ++same_n;
      } else {
        diff += cosine;
        ++diff_n;
      }
    }
  }
  EXPECT_GT(same / static_cast<double>(same_n),
            diff / static_cast<double>(diff_n));
}

TEST(SimPlmTest, EmptyDocEncodesToBiasDirection) {
  Rng rng(9);
  const text::Catalog catalog = text::GenerateCatalog(SmallCatalogConfig(), &rng);
  text::SimPlmConfig config;
  config.embed_dim = 16;
  text::SimPlm plm(catalog, config, &rng);
  const Matrix x = plm.Encode({{}});
  EXPECT_EQ(x.rows(), 1u);
  EXPECT_GT(linalg::Norm(x.Row(0)), 0.0);
}

// ---------------------------------------------------------------------------
// Dataset / five-core filter
// ---------------------------------------------------------------------------

TEST(DatasetTest, ComputeStats) {
  data::Dataset ds;
  ds.num_items = 3;
  ds.sequences = {{0, 1, 2}, {1, 2, 1}};
  const data::DatasetStats stats = ComputeStats(ds);
  EXPECT_EQ(stats.num_users, 2u);
  EXPECT_EQ(stats.num_interactions, 6u);
  EXPECT_DOUBLE_EQ(stats.avg_seq_len, 3.0);
  EXPECT_DOUBLE_EQ(stats.avg_item_actions, 2.0);
}

TEST(FiveCoreTest, DropsRareItemsAndShortUsers) {
  data::Dataset ds;
  ds.num_items = 4;
  // Item 3 appears once; user 1 will fall below 3 interactions after its
  // removal (core = 3 here for a small example).
  ds.sequences = {{0, 1, 2, 0, 1}, {3, 0, 1}, {0, 1, 2, 2, 1}};
  ds.item_category = {0, 1, 2, 3};
  ds.text_embeddings = Matrix(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    ds.text_embeddings(i, 0) = static_cast<double>(i);
  }
  FiveCoreFilter(&ds, /*core=*/3);
  // Item 3 removed; remaining ids compacted.
  EXPECT_EQ(ds.num_items, 3u);
  for (const auto& seq : ds.sequences) {
    EXPECT_GE(seq.size(), 3u);
    for (std::size_t item : seq) EXPECT_LT(item, ds.num_items);
  }
  // Side data stays aligned: embedding row i should still carry value i for
  // surviving original items 0..2.
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_DOUBLE_EQ(ds.text_embeddings(i, 0), static_cast<double>(i));
}

TEST(FiveCoreTest, StableOnAlreadyFilteredData) {
  data::Dataset ds;
  ds.num_items = 2;
  ds.sequences = {{0, 1, 0, 1, 0}, {1, 0, 1, 0, 1}};
  FiveCoreFilter(&ds, 5);
  EXPECT_EQ(ds.num_items, 2u);
  EXPECT_EQ(ds.sequences.size(), 2u);
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

data::DatasetProfile TinyProfile() {
  data::DatasetProfile p = data::ArtsProfile(0.35);
  p.plm.embed_dim = 16;
  p.plm.calibration_iters = 20;
  return p;
}

TEST(GeneratorTest, ProducesConsistentDataset) {
  const data::GeneratedData gen = data::GenerateDataset(TinyProfile());
  const data::Dataset& ds = gen.dataset;
  EXPECT_GT(ds.sequences.size(), 20u);
  EXPECT_GT(ds.num_items, 10u);
  EXPECT_EQ(ds.text_embeddings.rows(), ds.num_items);
  EXPECT_EQ(ds.item_category.size(), ds.num_items);
  for (const auto& seq : ds.sequences) {
    EXPECT_GE(seq.size(), 5u);  // five-core
    for (std::size_t item : seq) EXPECT_LT(item, ds.num_items);
  }
}

TEST(GeneratorTest, Deterministic) {
  const data::GeneratedData a = data::GenerateDataset(TinyProfile());
  const data::GeneratedData b = data::GenerateDataset(TinyProfile());
  ASSERT_EQ(a.dataset.sequences.size(), b.dataset.sequences.size());
  EXPECT_EQ(a.dataset.sequences[0], b.dataset.sequences[0]);
}

TEST(GeneratorTest, NoImmediateRepetitionWithinSequence) {
  const data::GeneratedData gen = data::GenerateDataset(TinyProfile());
  for (const auto& seq : gen.dataset.sequences) {
    std::set<std::size_t> unique(seq.begin(), seq.end());
    EXPECT_EQ(unique.size(), seq.size());  // sampled without replacement
  }
}

TEST(GeneratorTest, TextEmbeddingsAnisotropic) {
  const data::GeneratedData gen = data::GenerateDataset(TinyProfile());
  Rng measure(5);
  const double cosine =
      linalg::MeanPairwiseCosine(gen.dataset.text_embeddings, &measure);
  EXPECT_GT(cosine, 0.75);
}

TEST(GeneratorTest, ProfilesHaveExpectedRelativeScale) {
  // Paper Table II: Toys/Tools larger than Arts; Food smallest and densest.
  const auto arts = data::ArtsProfile();
  const auto toys = data::ToysProfile();
  const auto tools = data::ToolsProfile();
  const auto food = data::FoodProfile();
  EXPECT_GT(toys.num_users, arts.num_users);
  EXPECT_GT(tools.num_users, arts.num_users);
  EXPECT_LT(food.num_users, arts.num_users);
  EXPECT_GT(food.mean_extra_len, arts.mean_extra_len);
  EXPECT_LT(food.catalog.title_len, arts.catalog.title_len);
}

TEST(GeneratorTest, AllProfilesGenerate) {
  for (const auto& profile : data::AllProfiles(0.25)) {
    data::DatasetProfile p = profile;
    p.plm.embed_dim = 16;
    p.plm.calibration_iters = 15;
    const data::GeneratedData gen = data::GenerateDataset(p);
    EXPECT_GT(gen.dataset.sequences.size(), 10u) << p.name;
    EXPECT_GT(gen.dataset.num_items, 8u) << p.name;
  }
}

// ---------------------------------------------------------------------------
// Splits
// ---------------------------------------------------------------------------

TEST(SplitTest, LeaveOneOutBasics) {
  data::Dataset ds;
  ds.num_items = 10;
  ds.sequences = {{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}};
  const data::Split split = data::LeaveOneOutSplit(ds);
  ASSERT_EQ(split.train.size(), 2u);
  EXPECT_EQ(split.train[0], (std::vector<std::size_t>{0, 1, 2}));
  ASSERT_EQ(split.valid.size(), 2u);
  EXPECT_EQ(split.valid[0].target, 3u);
  EXPECT_EQ(split.valid[0].input, (std::vector<std::size_t>{0, 1, 2}));
  ASSERT_EQ(split.test.size(), 2u);
  EXPECT_EQ(split.test[0].target, 4u);
  EXPECT_EQ(split.test[0].input, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(SplitTest, ShortSequencesTrainOnly) {
  data::Dataset ds;
  ds.num_items = 3;
  ds.sequences = {{0, 1}};
  const data::Split split = data::LeaveOneOutSplit(ds);
  EXPECT_EQ(split.train.size(), 1u);
  EXPECT_TRUE(split.valid.empty());
  EXPECT_TRUE(split.test.empty());
}

TEST(ColdSplitTest, ColdItemsNeverInTraining) {
  const data::GeneratedData gen = data::GenerateDataset(TinyProfile());
  Rng rng(11);
  const data::ColdSplit cold = data::ColdStartSplit(gen.dataset, 0.15, &rng);
  for (const auto& seq : cold.split.train) {
    for (std::size_t item : seq) {
      EXPECT_FALSE(cold.is_cold[item]);
    }
  }
}

TEST(ColdSplitTest, TestTargetsAreCold) {
  const data::GeneratedData gen = data::GenerateDataset(TinyProfile());
  Rng rng(12);
  const data::ColdSplit cold = data::ColdStartSplit(gen.dataset, 0.15, &rng);
  EXPECT_FALSE(cold.split.test.empty());
  for (const auto& inst : cold.split.test) {
    EXPECT_TRUE(cold.is_cold[inst.target]);
    for (std::size_t item : inst.input) EXPECT_FALSE(cold.is_cold[item]);
  }
}

TEST(ColdSplitTest, ColdFractionRespected) {
  const data::GeneratedData gen = data::GenerateDataset(TinyProfile());
  Rng rng(13);
  const data::ColdSplit cold = data::ColdStartSplit(gen.dataset, 0.15, &rng);
  std::size_t num_cold = 0;
  for (bool c : cold.is_cold)
    if (c) ++num_cold;
  const double fraction =
      static_cast<double>(num_cold) / static_cast<double>(cold.is_cold.size());
  EXPECT_NEAR(fraction, 0.15, 0.02);
}

TEST(ColdSplitTest, TrainAlignedWithUsers) {
  const data::GeneratedData gen = data::GenerateDataset(TinyProfile());
  Rng rng(14);
  const data::ColdSplit cold = data::ColdStartSplit(gen.dataset, 0.15, &rng);
  EXPECT_EQ(cold.split.train.size(), gen.dataset.sequences.size());
}

// ---------------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------------

TEST(BatcherTest, TrainBatchShiftsTargets) {
  const std::vector<std::vector<std::size_t>> seqs = {{1, 2, 3, 4}};
  const auto batches = data::MakeTrainBatches(seqs, /*max_len=*/8,
                                              /*batch_size=*/4, nullptr);
  ASSERT_EQ(batches.size(), 1u);
  const data::Batch& b = batches[0];
  EXPECT_EQ(b.batch_size, 1u);
  // Inputs 1,2,3 predict 2,3,4.
  EXPECT_EQ(b.items[0], 1u);
  EXPECT_EQ(b.targets[0], 2u);
  EXPECT_EQ(b.items[2], 3u);
  EXPECT_EQ(b.targets[2], 4u);
  EXPECT_DOUBLE_EQ(b.target_weights[2], 1.0);
  EXPECT_DOUBLE_EQ(b.target_weights[3], 0.0);  // padding
  EXPECT_EQ(b.last_position[0], 2u);
}

TEST(BatcherTest, TruncatesToMostRecent) {
  const std::vector<std::vector<std::size_t>> seqs = {{1, 2, 3, 4, 5, 6}};
  const auto batches = data::MakeTrainBatches(seqs, /*max_len=*/3,
                                              /*batch_size=*/4, nullptr);
  const data::Batch& b = batches[0];
  // Inputs are the most recent 3 of seq[:-1] = {2,3,4}; targets {3,4,5}...
  EXPECT_EQ(b.items[0], 3u);
  EXPECT_EQ(b.targets[0], 4u);
  EXPECT_EQ(b.items[2], 5u);
  EXPECT_EQ(b.targets[2], 6u);
}

TEST(BatcherTest, SkipsTooShortSequences) {
  const std::vector<std::vector<std::size_t>> seqs = {{7}, {1, 2}};
  const auto batches = data::MakeTrainBatches(seqs, 4, 8, nullptr);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].batch_size, 1u);
}

TEST(BatcherTest, BatchSizeRespected) {
  std::vector<std::vector<std::size_t>> seqs(10, {1, 2, 3});
  const auto batches = data::MakeTrainBatches(seqs, 4, 4, nullptr);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].batch_size, 4u);
  EXPECT_EQ(batches[2].batch_size, 2u);
}

TEST(BatcherTest, EvalBatchMarksOnlyLastPosition) {
  const std::vector<data::EvalInstance> instances = {
      {0, {1, 2, 3}, 9}};
  const auto batches = data::MakeEvalBatches(instances, 5, 4);
  ASSERT_EQ(batches.size(), 1u);
  const data::Batch& b = batches[0];
  EXPECT_EQ(b.last_position[0], 2u);
  EXPECT_EQ(b.targets[b.Flat(0, 2)], 9u);
  EXPECT_DOUBLE_EQ(b.target_weights[b.Flat(0, 2)], 1.0);
  EXPECT_DOUBLE_EQ(b.target_weights[b.Flat(0, 0)], 0.0);
}

TEST(BatcherTest, EvalBatchTruncatesContext) {
  const std::vector<data::EvalInstance> instances = {
      {0, {1, 2, 3, 4, 5}, 9}};
  const auto batches = data::MakeEvalBatches(instances, 3, 4);
  const data::Batch& b = batches[0];
  EXPECT_EQ(b.items[0], 3u);  // most recent 3 items kept
  EXPECT_EQ(b.items[2], 5u);
}

TEST(BatcherTest, ShuffleChangesOrderDeterministically) {
  std::vector<std::vector<std::size_t>> seqs;
  for (std::size_t u = 0; u < 20; ++u) seqs.push_back({u, u, u});
  Rng rng1(5), rng2(5), rng3(6);
  const auto a = data::MakeTrainBatches(seqs, 4, 32, &rng1);
  const auto b = data::MakeTrainBatches(seqs, 4, 32, &rng2);
  const auto c = data::MakeTrainBatches(seqs, 4, 32, &rng3);
  EXPECT_EQ(a[0].users, b[0].users);   // same seed, same order
  EXPECT_NE(a[0].users, c[0].users);   // different seed, different order
}

}  // namespace
}  // namespace whitenrec
