// Streaming top-K and fused-scoring evaluation parity. The contracts under
// test (ISSUE 4): the bounded TopKSelector must select EXACTLY the same
// items as the partial_sort reference under the canonical (score desc, item
// id asc) order — including adversarial ties and ±inf — regardless of feed
// order or tile width; the fused (WHITENREC_SCORING=fused) evaluation paths
// must produce bitwise-identical ranks, metrics, and recommendation lists to
// the materialized reference at every thread count; and the nth_element
// popularity head split must match a full-sort reference.

#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "linalg/gemm.h"
#include "linalg/rng.h"
#include "linalg/topk.h"
#include "seqrec/baselines.h"
#include "seqrec/trainer.h"

namespace whitenrec {
namespace seqrec {
namespace {

using linalg::Matrix;
using linalg::RanksBefore;
using linalg::Rng;
using linalg::ScoredItem;
using linalg::ScoringMode;
using linalg::SelectTopK;
using linalg::TopKSelector;

const std::vector<std::size_t> kThreadCounts = {1, 4, 16};

class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n) : saved_(core::NumThreads()) {
    core::SetNumThreads(n);
  }
  ~ScopedThreads() { core::SetNumThreads(saved_); }

 private:
  std::size_t saved_;
};

class ScopedScoringMode {
 public:
  explicit ScopedScoringMode(ScoringMode mode)
      : saved_(linalg::CurrentScoringMode()) {
    linalg::SetScoringMode(mode);
  }
  ~ScopedScoringMode() { linalg::SetScoringMode(saved_); }

 private:
  ScoringMode saved_;
};

class ScopedScoreTile {
 public:
  explicit ScopedScoreTile(std::size_t tile)
      : saved_(linalg::ScoreTileCols()) {
    linalg::SetScoreTileCols(tile);
  }
  ~ScopedScoreTile() { linalg::SetScoreTileCols(saved_); }

 private:
  std::size_t saved_;
};

void ExpectSameSelection(const std::vector<ScoredItem>& got,
                         const std::vector<ScoredItem>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << "position " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "position " << i;
  }
}

// Runs the selector over `scores` in several feed orders / tile widths and
// checks each selection against the partial_sort reference.
void CheckSelectorAgainstReference(const std::vector<double>& scores,
                                   std::size_t k) {
  const std::vector<ScoredItem> want = SelectTopK(scores.data(),
                                                  scores.size(), k);
  TopKSelector sel(k);
  for (std::size_t i = 0; i < scores.size(); ++i) sel.Push(i, scores[i]);
  ExpectSameSelection(sel.SortedDescending(), want);
  for (const std::size_t tile : {1u, 3u, 7u, 64u, 1024u}) {
    sel.Reset();
    for (std::size_t j0 = 0; j0 < scores.size(); j0 += tile) {
      const std::size_t jn = std::min<std::size_t>(tile, scores.size() - j0);
      sel.PushTile(scores.data() + j0, j0, jn);
    }
    ExpectSameSelection(sel.SortedDescending(), want);
  }
}

// ---------------------------------------------------------------------------
// TopKSelector vs. partial_sort reference
// ---------------------------------------------------------------------------

TEST(TopKSelectorTest, MatchesReferenceOnRandomScores) {
  Rng rng(31);
  for (const std::size_t n : {1u, 5u, 97u, 500u}) {
    const Matrix s = rng.GaussianMatrix(1, n, 1.0);
    const std::vector<double> scores(s.data(), s.data() + n);
    for (const std::size_t k : {1u, 2u, 20u, 499u, 500u, 900u}) {
      CheckSelectorAgainstReference(scores, k);
    }
  }
}

TEST(TopKSelectorTest, HeavyTiesResolveByItemId) {
  // Quantize scores to 3 distinct values: selection within a tied band must
  // come out in ascending item id, identically in both implementations.
  Rng rng(32);
  const std::size_t n = 301;
  const Matrix g = rng.GaussianMatrix(1, n, 1.0);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = std::floor(g.data()[i] * 1.5);
  }
  for (const std::size_t k : {1u, 7u, 50u, 300u}) {
    CheckSelectorAgainstReference(scores, k);
  }
}

TEST(TopKSelectorTest, AllEqualScores) {
  const std::vector<double> scores(64, 2.5);
  CheckSelectorAgainstReference(scores, 10);
  // The winners must be items 0..9 specifically.
  TopKSelector sel(10);
  sel.PushTile(scores.data(), 0, scores.size());
  const auto got = sel.SortedDescending();
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].item, i);
}

TEST(TopKSelectorTest, InfinitiesAreOrdinaryValues) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> scores = {0.0, -inf, inf, 1.0, -inf, inf, -1.0, 0.0};
  for (const std::size_t k : {1u, 2u, 3u, 5u, 8u, 12u}) {
    CheckSelectorAgainstReference(scores, k);
  }
  TopKSelector sel(3);
  sel.PushTile(scores.data(), 0, scores.size());
  const auto got = sel.SortedDescending();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].item, 2u);  // +inf, smaller id first
  EXPECT_EQ(got[1].item, 5u);
  EXPECT_EQ(got[2].item, 3u);  // 1.0
}

TEST(TopKSelectorTest, KLargerThanCatalogKeepsEverything) {
  const std::vector<double> scores = {3.0, 1.0, 2.0};
  TopKSelector sel(10);
  sel.PushTile(scores.data(), 0, scores.size());
  const auto got = sel.SortedDescending();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].item, 0u);
  EXPECT_EQ(got[1].item, 2u);
  EXPECT_EQ(got[2].item, 1u);
}

TEST(TopKSelectorTest, ResetForgetsCandidates) {
  TopKSelector sel(2);
  sel.Push(0, 100.0);
  sel.Push(1, 99.0);
  sel.Reset();
  EXPECT_EQ(sel.size(), 0u);
  sel.Push(5, 1.0);
  const auto got = sel.SortedDescending();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].item, 5u);
}

// ---------------------------------------------------------------------------
// PopularityHeadSet vs. full-sort reference
// ---------------------------------------------------------------------------

std::vector<char> SortBasedHeadSet(const std::vector<std::size_t>& pop,
                                   std::size_t head_count) {
  std::vector<std::size_t> order(pop.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&pop](std::size_t a, std::size_t b) {
    if (pop[a] != pop[b]) return pop[a] > pop[b];
    return a < b;
  });
  std::vector<char> head(pop.size(), 0);
  for (std::size_t i = 0; i < std::min(head_count, order.size()); ++i) {
    head[order[i]] = 1;
  }
  return head;
}

TEST(PopularityHeadSetTest, MatchesSortReferenceWithTies) {
  Rng rng(33);
  const std::size_t n = 257;
  std::vector<std::size_t> pop(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Few distinct counts -> the head boundary lands inside a tied band.
    pop[i] = rng.UniformInt(6);
  }
  for (const std::size_t head : {0u, 1u, 51u, 128u, 256u, 257u, 400u}) {
    EXPECT_EQ(eval::PopularityHeadSet(pop, head), SortBasedHeadSet(pop, head))
        << "head_count=" << head;
  }
}

TEST(PopularityHeadSetTest, EmptyAndDegenerateInputs) {
  EXPECT_TRUE(eval::PopularityHeadSet({}, 3).empty());
  const std::vector<std::size_t> pop = {5, 5, 5};
  EXPECT_EQ(eval::PopularityHeadSet(pop, 0),
            (std::vector<char>{0, 0, 0}));
  EXPECT_EQ(eval::PopularityHeadSet(pop, 2),
            (std::vector<char>{1, 1, 0}));  // tie broken toward smaller id
  EXPECT_EQ(eval::PopularityHeadSet(pop, 3),
            (std::vector<char>{1, 1, 1}));
}

// ---------------------------------------------------------------------------
// Fused vs. materialized evaluation (end to end)
// ---------------------------------------------------------------------------

const data::GeneratedData& TinyData() {
  static const data::GeneratedData* data = [] {
    data::DatasetProfile p = data::ArtsProfile(0.3);
    p.plm.embed_dim = 16;
    p.plm.calibration_iters = 15;
    return new data::GeneratedData(data::GenerateDataset(p));
  }();
  return *data;
}

SasRecConfig TinyModelConfig() {
  SasRecConfig config;
  config.hidden_dim = 16;
  config.num_blocks = 1;
  config.num_heads = 2;
  config.ffn_hidden = 32;
  config.dropout = 0.0;
  config.max_len = 8;
  config.seed = 21;
  return config;
}

void ExpectSameEval(const EvalResult& a, const EvalResult& b) {
  EXPECT_EQ(a.recall20, b.recall20);
  EXPECT_EQ(a.ndcg20, b.ndcg20);
  EXPECT_EQ(a.recall50, b.recall50);
  EXPECT_EQ(a.ndcg50, b.ndcg50);
  EXPECT_EQ(a.count, b.count);
}

TEST(FusedEvalTest, EvaluateRankingMatchesMaterializedBitwise) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);

  EvalResult ref;
  {
    ScopedScoringMode mode(ScoringMode::kMaterialized);
    ref = EvaluateRanking(rec.get(), split.test, split.train, 8);
  }
  for (const std::size_t threads : kThreadCounts) {
    ScopedThreads t(threads);
    for (const std::size_t tile : {7u, 64u, 256u, 100000u}) {
      ScopedScoringMode mode(ScoringMode::kFused);
      ScopedScoreTile st(tile);
      const EvalResult fused =
          EvaluateRanking(rec.get(), split.test, split.train, 8);
      ExpectSameEval(fused, ref);
    }
  }
}

TEST(FusedEvalTest, StratifiedEvalMatchesMaterializedBitwise) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);

  StratifiedEvalResult ref;
  {
    ScopedScoringMode mode(ScoringMode::kMaterialized);
    ref = EvaluateRankingByPopularity(rec.get(), split.test, split.train, 8);
  }
  ScopedScoringMode mode(ScoringMode::kFused);
  const StratifiedEvalResult fused =
      EvaluateRankingByPopularity(rec.get(), split.test, split.train, 8);
  ExpectSameEval(fused.head, ref.head);
  ExpectSameEval(fused.tail, ref.tail);
}

TEST(FusedEvalTest, TopKRecommendationsIdenticalLists) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);

  std::vector<std::vector<std::size_t>> ref;
  {
    ScopedScoringMode mode(ScoringMode::kMaterialized);
    ref = TopKRecommendations(rec.get(), split.test, split.train, 8, 20);
  }
  ASSERT_EQ(ref.size(), split.test.size());
  for (const auto& list : ref) EXPECT_EQ(list.size(), 20u);

  for (const std::size_t threads : kThreadCounts) {
    ScopedThreads t(threads);
    for (const std::size_t tile : {13u, 256u}) {
      ScopedScoringMode mode(ScoringMode::kFused);
      ScopedScoreTile st(tile);
      const auto fused =
          TopKRecommendations(rec.get(), split.test, split.train, 8, 20);
      ASSERT_EQ(fused.size(), ref.size());
      for (std::size_t u = 0; u < ref.size(); ++u) {
        EXPECT_EQ(fused[u], ref[u]) << "user " << u << " threads=" << threads
                                    << " tile=" << tile;
      }
    }
  }
}

TEST(FusedEvalTest, RecommendationsExcludeTrainingItems) {
  const data::Dataset& ds = TinyData().dataset;
  auto rec = MakeSasRecId(ds, TinyModelConfig());
  const data::Split split = data::LeaveOneOutSplit(ds);
  ScopedScoringMode mode(ScoringMode::kFused);
  const auto lists =
      TopKRecommendations(rec.get(), split.test, split.train, 8, 20);
  for (std::size_t u = 0; u < lists.size(); ++u) {
    const std::size_t user = split.test[u].user;
    for (const std::size_t item : lists[u]) {
      for (const std::size_t trained : split.train[user]) {
        EXPECT_NE(item, trained) << "user " << user;
      }
    }
  }
}

TEST(FusedEvalTest, ScoringModeKnobRoundTrips) {
  EXPECT_STREQ(linalg::ScoringModeName(ScoringMode::kMaterialized),
               "materialized");
  EXPECT_STREQ(linalg::ScoringModeName(ScoringMode::kFused), "fused");
  ScopedScoringMode mode(ScoringMode::kFused);
  EXPECT_EQ(linalg::CurrentScoringMode(), ScoringMode::kFused);
}

}  // namespace
}  // namespace seqrec
}  // namespace whitenrec
