#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "whitening/incremental_whitening.h"
#include "whitening/whitening.h"
#include "linalg/eigen.h"
#include "linalg/stats.h"
#include "nn/serialize.h"

namespace whitenrec {
namespace {

using linalg::Matrix;
using linalg::Rng;

Matrix CorrelatedCloud(std::size_t n, std::size_t d, Rng* rng) {
  Matrix a = rng->GaussianMatrix(d, d, 1.0);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j) a(i, j) /= static_cast<double>(j + 1);
  Matrix z = rng->GaussianMatrix(n, d, 1.0);
  Matrix x = linalg::MatMulTransB(z, a);
  for (std::size_t r = 0; r < n; ++r) {
    double* row = x.RowPtr(r);
    for (std::size_t c = 0; c < d; ++c) row[c] += 2.0;
  }
  return x;
}

// ---------------------------------------------------------------------------
// Ledoit-Wolf shrinkage
// ---------------------------------------------------------------------------

TEST(LedoitWolfTest, LargeCorrelatedSampleMatchesSampleCovariance) {
  // With n >> d and a genuinely non-spherical truth, the optimal shrinkage
  // goes to ~0 and LW ~ S. (On *isotropic* data rho correctly goes to 1:
  // the spherical target is the truth there.)
  Rng rng(1);
  const Matrix x = CorrelatedCloud(20000, 4, &rng);
  double rho = -1.0;
  const Matrix lw = linalg::LedoitWolfCovariance(x, &rho);
  const Matrix s = linalg::Covariance(x);
  EXPECT_LT(rho, 0.02);
  const double scale = s.MaxAbs();
  for (std::size_t i = 0; i < s.size(); ++i)
    EXPECT_NEAR(lw.data()[i], s.data()[i], 0.03 * scale);
}

TEST(LedoitWolfTest, IsotropicDataShrinksFully) {
  Rng rng(21);
  const Matrix x = rng.GaussianMatrix(5000, 4, 1.0);
  double rho = -1.0;
  linalg::LedoitWolfCovariance(x, &rho);
  EXPECT_GT(rho, 0.5);  // target equals the truth, so shrink hard
}

TEST(LedoitWolfTest, SmallSampleShrinksTowardSphericalTarget) {
  Rng rng(2);
  const Matrix x = CorrelatedCloud(12, 8, &rng);  // n close to d
  double rho = -1.0;
  const Matrix lw = linalg::LedoitWolfCovariance(x, &rho);
  EXPECT_GT(rho, 0.05);
  EXPECT_LE(rho, 1.0);
  // Shrinkage must improve conditioning vs the raw sample covariance.
  const Matrix s = linalg::Covariance(x);
  auto k_lw = linalg::ConditionNumber(lw, 1e-15);
  auto k_s = linalg::ConditionNumber(s, 1e-15);
  ASSERT_TRUE(k_lw.ok());
  ASSERT_TRUE(k_s.ok());
  EXPECT_LT(k_lw.value(), k_s.value());
}

TEST(LedoitWolfTest, PreservesTrace) {
  Rng rng(3);
  const Matrix x = CorrelatedCloud(40, 6, &rng);
  const Matrix lw = linalg::LedoitWolfCovariance(x);
  const Matrix s = linalg::Covariance(x);
  double tr_lw = 0.0, tr_s = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    tr_lw += lw(i, i);
    tr_s += s(i, i);
  }
  EXPECT_NEAR(tr_lw, tr_s, 1e-9 * std::fabs(tr_s));
}

TEST(LedoitWolfTest, WhiteningWithShrinkageWorks) {
  Rng rng(4);
  const Matrix x = CorrelatedCloud(30, 8, &rng);
  WhiteningOptions options;
  options.ledoit_wolf = true;
  options.epsilon = 0.0;
  auto fitted = FitWhiteningAdvanced(x, options);
  ASSERT_TRUE(fitted.ok());
  const Matrix z = ApplyWhitening(fitted.value(), x);
  // Shrinkage trades exact isotropy for stability; variances should at
  // least land in a sane band.
  const Matrix cov = linalg::Covariance(z);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GT(cov(i, i), 0.2);
    EXPECT_LT(cov(i, i), 5.0);
  }
}

// ---------------------------------------------------------------------------
// Newton-Schulz inverse square root
// ---------------------------------------------------------------------------

TEST(NewtonSchulzTest, MatchesExactOnIdentity) {
  auto z = linalg::NewtonSchulzInverseSqrt(Matrix::Identity(4), 6);
  ASSERT_TRUE(z.ok());
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(z.value()(i, j), i == j ? 1.0 : 0.0, 1e-6);
}

TEST(NewtonSchulzTest, SquareOfResultInvertsInput) {
  Rng rng(5);
  Matrix a = rng.GaussianMatrix(5, 5, 1.0);
  Matrix spd = linalg::MatMulTransB(a, a);
  for (std::size_t i = 0; i < 5; ++i) spd(i, i) += 1.0;
  auto z = linalg::NewtonSchulzInverseSqrt(spd, 20);
  ASSERT_TRUE(z.ok());
  // z * spd * z ~ I.
  const Matrix check = linalg::MatMul(z.value(),
                                      linalg::MatMul(spd, z.value()));
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_NEAR(check(i, j), i == j ? 1.0 : 0.0, 1e-4);
}

TEST(NewtonSchulzTest, MoreIterationsMoreAccurate) {
  Rng rng(6);
  Matrix a = rng.GaussianMatrix(6, 6, 1.0);
  Matrix spd = linalg::MatMulTransB(a, a);
  for (std::size_t i = 0; i < 6; ++i) spd(i, i) += 0.5;
  auto err = [&](int iters) {
    auto z = linalg::NewtonSchulzInverseSqrt(spd, iters);
    WR_CHECK(z.ok());
    Matrix check = linalg::MatMul(z.value(), linalg::MatMul(spd, z.value()));
    for (std::size_t i = 0; i < 6; ++i) check(i, i) -= 1.0;
    return check.MaxAbs();
  };
  EXPECT_LT(err(12), err(3));
}

TEST(NewtonSchulzTest, RejectsBadInput) {
  EXPECT_FALSE(linalg::NewtonSchulzInverseSqrt(Matrix(2, 3)).ok());
  EXPECT_FALSE(linalg::NewtonSchulzInverseSqrt(Matrix(3, 3)).ok());  // trace 0
}

TEST(NewtonSchulzTest, ZcaViaNewtonApproximatesExact) {
  // Newton-Schulz converges per eigenvalue; near-null directions need many
  // iterations, so compare on a moderately conditioned cloud (as DBN does:
  // it whitens already-normalized activations).
  Rng rng(7);
  Matrix x = rng.GaussianMatrix(400, 6, 1.0);
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < 6; ++c)
      x(r, c) *= 1.0 + 0.5 * static_cast<double>(c);
  WhiteningOptions newton;
  newton.newton_iterations = 20;
  auto w_newton = FitWhiteningAdvanced(x, newton);
  auto w_exact = FitWhitening(x, WhiteningKind::kZca);
  ASSERT_TRUE(w_newton.ok());
  ASSERT_TRUE(w_exact.ok());
  const Matrix diff =
      linalg::Sub(w_newton.value().phi, w_exact.value().phi);
  EXPECT_LT(diff.MaxAbs() / w_exact.value().phi.MaxAbs(), 0.05);
}

TEST(NewtonSchulzTest, OnlyValidForZca) {
  Rng rng(8);
  const Matrix x = CorrelatedCloud(50, 4, &rng);
  WhiteningOptions options;
  options.kind = WhiteningKind::kPca;
  options.newton_iterations = 5;
  EXPECT_FALSE(FitWhiteningAdvanced(x, options).ok());
}

// ---------------------------------------------------------------------------
// Incremental whitening
// ---------------------------------------------------------------------------

TEST(IncrementalWhiteningTest, MatchesBatchStatistics) {
  Rng rng(9);
  const Matrix x = CorrelatedCloud(200, 5, &rng);
  IncrementalWhitening acc(5);
  acc.Add(x.RowSlice(0, 80));
  acc.Add(x.RowSlice(80, 140));
  acc.Add(x.RowSlice(140, 200));
  EXPECT_EQ(acc.count(), 200u);

  const std::vector<double> batch_mean = linalg::ColumnMean(x);
  const std::vector<double> inc_mean = acc.Mean();
  for (std::size_t c = 0; c < 5; ++c)
    EXPECT_NEAR(inc_mean[c], batch_mean[c], 1e-10);

  auto inc_cov = acc.CovarianceMatrix();
  ASSERT_TRUE(inc_cov.ok());
  const Matrix batch_cov = linalg::Covariance(x);
  for (std::size_t i = 0; i < batch_cov.size(); ++i)
    EXPECT_NEAR(inc_cov.value().data()[i], batch_cov.data()[i], 1e-9);
}

class IncrementalKindTest : public ::testing::TestWithParam<WhiteningKind> {};

TEST_P(IncrementalKindTest, FitMatchesBatchFit) {
  Rng rng(10);
  const Matrix x = CorrelatedCloud(300, 6, &rng);
  IncrementalWhitening acc(6);
  acc.Add(x.RowSlice(0, 123));
  acc.Add(x.RowSlice(123, 300));
  WhiteningOptions options;
  options.kind = GetParam();
  options.epsilon = 1e-6;
  auto inc = acc.Fit(options);
  auto batch = FitWhitening(x, GetParam(), 1e-6);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(batch.ok());
  const Matrix diff = linalg::Sub(inc.value().phi, batch.value().phi);
  EXPECT_LT(diff.MaxAbs(), 1e-6 * std::max(1.0, batch.value().phi.MaxAbs()));
}

INSTANTIATE_TEST_SUITE_P(Kinds, IncrementalKindTest,
                         ::testing::Values(WhiteningKind::kZca,
                                           WhiteningKind::kPca,
                                           WhiteningKind::kCholesky,
                                           WhiteningKind::kBatchNorm));

TEST(IncrementalWhiteningTest, MergeMatchesSequential) {
  Rng rng(11);
  const Matrix x = CorrelatedCloud(150, 4, &rng);
  IncrementalWhitening a(4), b(4), full(4);
  a.Add(x.RowSlice(0, 60));
  b.Add(x.RowSlice(60, 150));
  full.Add(x);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.count(), 150u);
  auto ca = a.CovarianceMatrix();
  auto cf = full.CovarianceMatrix();
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cf.ok());
  for (std::size_t i = 0; i < ca.value().size(); ++i)
    EXPECT_NEAR(ca.value().data()[i], cf.value().data()[i], 1e-9);
}

TEST(IncrementalWhiteningTest, MergeRejectsDimMismatch) {
  IncrementalWhitening a(4), b(5);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(IncrementalWhiteningTest, FitNeedsSamples) {
  IncrementalWhitening acc(4);
  EXPECT_FALSE(acc.Fit(WhiteningOptions{}).ok());
}

TEST(IncrementalWhiteningTest, StreamingColdStartScenario) {
  // Day-1 catalog fits the transform; day-2 arrivals update it; the refit
  // whitens the combined catalog exactly.
  Rng rng(12);
  const Matrix day1 = CorrelatedCloud(200, 6, &rng);
  const Matrix day2 = CorrelatedCloud(100, 6, &rng);
  IncrementalWhitening acc(6);
  acc.Add(day1);
  acc.Add(day2);
  WhiteningOptions options;
  options.epsilon = 1e-8;
  auto w = acc.Fit(options);
  ASSERT_TRUE(w.ok());
  Matrix all(300, 6);
  for (std::size_t r = 0; r < 200; ++r) all.SetRow(r, day1.Row(r));
  for (std::size_t r = 0; r < 100; ++r) all.SetRow(200 + r, day2.Row(r));
  const Matrix z = ApplyWhitening(w.value(), all);
  const IsotropyDiagnostics diag = MeasureIsotropy(z);
  EXPECT_LT(diag.max_diag_error, 1e-3);
  EXPECT_LT(diag.max_offdiag_cov, 1e-3);
}

// ---------------------------------------------------------------------------
// Parameter serialization
// ---------------------------------------------------------------------------

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(13);
  nn::Parameter a("layer.W", rng.GaussianMatrix(3, 4, 1.0));
  nn::Parameter b("layer.b", rng.GaussianMatrix(1, 4, 1.0));
  const std::string path = ::testing::TempDir() + "/ckpt_roundtrip.bin";
  ASSERT_TRUE(nn::SaveParameters(path, {&a, &b}).ok());

  nn::Parameter a2("layer.W", Matrix(3, 4));
  nn::Parameter b2("layer.b", Matrix(1, 4));
  ASSERT_TRUE(nn::LoadParameters(path, {&a2, &b2}).ok());
  for (std::size_t i = 0; i < a.value.size(); ++i)
    EXPECT_DOUBLE_EQ(a2.value.data()[i], a.value.data()[i]);
  for (std::size_t i = 0; i < b.value.size(); ++i)
    EXPECT_DOUBLE_EQ(b2.value.data()[i], b.value.data()[i]);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsShapeMismatch) {
  Rng rng(14);
  nn::Parameter a("w", rng.GaussianMatrix(2, 2, 1.0));
  const std::string path = ::testing::TempDir() + "/ckpt_shape.bin";
  ASSERT_TRUE(nn::SaveParameters(path, {&a}).ok());
  nn::Parameter wrong("w", Matrix(3, 2));
  EXPECT_FALSE(nn::LoadParameters(path, {&wrong}).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsNameMismatch) {
  Rng rng(15);
  nn::Parameter a("w", rng.GaussianMatrix(2, 2, 1.0));
  const std::string path = ::testing::TempDir() + "/ckpt_name.bin";
  ASSERT_TRUE(nn::SaveParameters(path, {&a}).ok());
  nn::Parameter wrong("v", Matrix(2, 2));
  EXPECT_FALSE(nn::LoadParameters(path, {&wrong}).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsMissingFile) {
  nn::Parameter a("w", Matrix(2, 2));
  EXPECT_FALSE(nn::LoadParameters("/nonexistent/ckpt.bin", {&a}).ok());
}

TEST(SerializeTest, RejectsCountMismatch) {
  Rng rng(16);
  nn::Parameter a("a", rng.GaussianMatrix(2, 2, 1.0));
  nn::Parameter b("b", rng.GaussianMatrix(2, 2, 1.0));
  const std::string path = ::testing::TempDir() + "/ckpt_count.bin";
  ASSERT_TRUE(nn::SaveParameters(path, {&a, &b}).ok());
  EXPECT_FALSE(nn::LoadParameters(path, {&a}).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace whitenrec
