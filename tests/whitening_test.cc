#include <cmath>

#include <gtest/gtest.h>

#include "whitening/flow_whitening.h"
#include "whitening/incremental_whitening.h"
#include "whitening/parametric_whitening.h"
#include "whitening/whiten_encoder.h"
#include "whitening/whitening.h"
#include "grad_check.h"
#include "linalg/eigen.h"
#include "linalg/stats.h"

namespace whitenrec {
namespace {

using linalg::Matrix;
using linalg::Rng;
using ::whitenrec::testing::MaxInputGradError;
using ::whitenrec::testing::MaxParamGradError;
using ::whitenrec::testing::WeightedSum;

// Correlated anisotropic test cloud: x = A z + mu with a skewed A.
Matrix AnisotropicCloud(std::size_t n, std::size_t d, Rng* rng) {
  Matrix a = rng->GaussianMatrix(d, d, 1.0);
  // Skew the spectrum so dimensions are strongly correlated.
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j)
      a(i, j) /= static_cast<double>(j + 1);
  Matrix z = rng->GaussianMatrix(n, d, 1.0);
  Matrix x = linalg::MatMulTransB(z, a);
  for (std::size_t r = 0; r < n; ++r) {
    double* row = x.RowPtr(r);
    for (std::size_t c = 0; c < d; ++c) row[c] += 5.0;  // common offset
  }
  return x;
}

// ---------------------------------------------------------------------------
// Non-parametric whitening transforms
// ---------------------------------------------------------------------------

class WhiteningKindTest : public ::testing::TestWithParam<WhiteningKind> {};

TEST_P(WhiteningKindTest, OutputIsCentered) {
  Rng rng(31);
  const Matrix x = AnisotropicCloud(400, 8, &rng);
  auto fitted = FitWhitening(x, GetParam(), 1e-8);
  ASSERT_TRUE(fitted.ok());
  const Matrix z = ApplyWhitening(fitted.value(), x);
  const std::vector<double> mean = linalg::ColumnMean(z);
  for (double m : mean) EXPECT_NEAR(m, 0.0, 1e-9);
}

TEST_P(WhiteningKindTest, DiagonalOfOutputCovarianceIsOne) {
  Rng rng(32);
  const Matrix x = AnisotropicCloud(400, 8, &rng);
  auto fitted = FitWhitening(x, GetParam(), 1e-8);
  ASSERT_TRUE(fitted.ok());
  const Matrix z = ApplyWhitening(fitted.value(), x);
  const Matrix cov = linalg::Covariance(z);
  for (std::size_t i = 0; i < cov.rows(); ++i)
    EXPECT_NEAR(cov(i, i), 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WhiteningKindTest,
                         ::testing::Values(WhiteningKind::kZca,
                                           WhiteningKind::kPca,
                                           WhiteningKind::kCholesky,
                                           WhiteningKind::kBatchNorm));

class DecorrelatingKindTest : public ::testing::TestWithParam<WhiteningKind> {};

TEST_P(DecorrelatingKindTest, OutputCovarianceIsIdentity) {
  Rng rng(33);
  const Matrix x = AnisotropicCloud(500, 6, &rng);
  auto z = WhitenMatrix(x, 1, GetParam(), 1e-8);
  ASSERT_TRUE(z.ok());
  const IsotropyDiagnostics diag = MeasureIsotropy(z.value());
  EXPECT_LT(diag.max_diag_error, 1e-4);
  EXPECT_LT(diag.max_offdiag_cov, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(FullWhiteners, DecorrelatingKindTest,
                         ::testing::Values(WhiteningKind::kZca,
                                           WhiteningKind::kPca,
                                           WhiteningKind::kCholesky));

TEST(WhiteningTest, BatchNormDoesNotDecorrelate) {
  // BN standardizes but leaves cross-dimension correlation intact — this is
  // the paper's motivation for full whitening (Table VI: BN < ZCA/CD).
  Rng rng(34);
  const Matrix x = AnisotropicCloud(500, 6, &rng);
  auto z = WhitenMatrix(x, 1, WhiteningKind::kBatchNorm, 1e-8);
  ASSERT_TRUE(z.ok());
  const IsotropyDiagnostics diag = MeasureIsotropy(z.value());
  EXPECT_LT(diag.max_diag_error, 1e-4);
  EXPECT_GT(diag.max_offdiag_cov, 0.1);  // correlation survives
}

TEST(WhiteningTest, ZcaStaysClosestToOriginalAxes) {
  // ZCA is the minimal-rotation whitening: its output should correlate with
  // the input dimensions far more than PCA's.
  Rng rng(35);
  const Matrix x = AnisotropicCloud(600, 5, &rng);
  auto zca = WhitenMatrix(x, 1, WhiteningKind::kZca, 1e-8);
  auto pca = WhitenMatrix(x, 1, WhiteningKind::kPca, 1e-8);
  ASSERT_TRUE(zca.ok());
  ASSERT_TRUE(pca.ok());
  Matrix centered = x;
  linalg::CenterColumns(&centered);
  auto diag_corr = [&](const Matrix& z) {
    double corr = 0.0;
    for (std::size_t c = 0; c < z.cols(); ++c) {
      corr += std::fabs(linalg::CosineSimilarity(z.Col(c), centered.Col(c)));
    }
    return corr;
  };
  EXPECT_GT(diag_corr(zca.value()), diag_corr(pca.value()));
}

TEST(WhiteningTest, WhiteningKillsMeanCosine) {
  // The headline effect: anisotropic cloud with high mean pairwise cosine
  // becomes near-orthogonal after whitening (paper Sec. III-B vs IV-A).
  Rng rng(36);
  const Matrix x = AnisotropicCloud(400, 8, &rng);
  Rng m1(1), m2(2);
  const double cos_before = linalg::MeanPairwiseCosine(x, &m1);
  auto z = WhitenMatrix(x, 1, WhiteningKind::kZca, 1e-8);
  ASSERT_TRUE(z.ok());
  const double cos_after = linalg::MeanPairwiseCosine(z.value(), &m2);
  EXPECT_GT(cos_before, 0.5);
  EXPECT_LT(std::fabs(cos_after), 0.1);
}

TEST(WhiteningTest, FitRejectsTooFewRows) {
  EXPECT_FALSE(FitWhitening(Matrix(1, 4), WhiteningKind::kZca).ok());
}

TEST(WhiteningTest, ConditionNumberDropsToOne) {
  Rng rng(37);
  const Matrix x = AnisotropicCloud(500, 6, &rng);
  auto kappa_before = linalg::ConditionNumber(linalg::Covariance(x));
  auto z = WhitenMatrix(x, 1, WhiteningKind::kZca, 1e-8);
  ASSERT_TRUE(z.ok());
  auto kappa_after = linalg::ConditionNumber(linalg::Covariance(z.value()));
  ASSERT_TRUE(kappa_before.ok());
  ASSERT_TRUE(kappa_after.ok());
  EXPECT_GT(kappa_before.value(), 100.0);
  EXPECT_NEAR(kappa_after.value(), 1.0, 1e-2);
}

// ---------------------------------------------------------------------------
// Group (relaxed) whitening
// ---------------------------------------------------------------------------

class GroupWhiteningTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupWhiteningTest, WithinGroupDecorrelated) {
  const std::size_t groups = GetParam();
  Rng rng(38);
  const std::size_t d = 8;
  const Matrix x = AnisotropicCloud(500, d, &rng);
  // Tiny epsilon keeps the ridge bias (eps / lambda_min) below the test
  // tolerance even for this near-singular cloud.
  auto z = WhitenMatrix(x, groups, WhiteningKind::kZca, 1e-12);
  ASSERT_TRUE(z.ok());
  const Matrix cov = linalg::Covariance(z.value());
  const std::size_t gd = d / groups;
  // Tolerance accounts for the epsilon-ridge bias: the whitened covariance
  // is exactly I - eps * Phi Phi^T, which for near-singular groups leaves a
  // residual of order eps / lambda_min.
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t i = g * gd; i < (g + 1) * gd; ++i) {
      for (std::size_t j = g * gd; j < (g + 1) * gd; ++j) {
        EXPECT_NEAR(cov(i, j), i == j ? 1.0 : 0.0, 2e-3)
            << "group " << g << " (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Groups, GroupWhiteningTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(GroupWhiteningTest2, RelaxedKeepsCrossGroupCorrelation) {
  Rng rng(39);
  const Matrix x = AnisotropicCloud(500, 8, &rng);
  auto z = WhitenMatrix(x, 4, WhiteningKind::kZca, 1e-8);
  ASSERT_TRUE(z.ok());
  const Matrix cov = linalg::Covariance(z.value());
  double max_cross = 0.0;
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      if (i / 2 != j / 2) max_cross = std::max(max_cross, std::fabs(cov(i, j)));
  EXPECT_GT(max_cross, 0.05);  // some cross-group correlation preserved
}

TEST(GroupWhiteningTest2, RelaxedPreservesMoreCosineStructure) {
  // Paper Fig. 4: weaker whitening (larger G) leaves item pairs more similar.
  Rng rng(40);
  const Matrix x = AnisotropicCloud(400, 8, &rng);
  Rng m1(1), m2(2);
  auto z1 = WhitenMatrix(x, 1, WhiteningKind::kZca, 1e-8);
  auto z4 = WhitenMatrix(x, 4, WhiteningKind::kZca, 1e-8);
  ASSERT_TRUE(z1.ok());
  ASSERT_TRUE(z4.ok());
  const double v1 =
      linalg::Variance(linalg::PairwiseCosines(z1.value(), &m1, 5000));
  const double v4 =
      linalg::Variance(linalg::PairwiseCosines(z4.value(), &m2, 5000));
  // Relaxed whitening keeps a broader cosine distribution.
  EXPECT_GT(v4, v1);
}

TEST(GroupWhiteningTest2, GroupsMustDivideDims) {
  GroupWhitening gw;
  const Matrix x(10, 8);
  EXPECT_FALSE(gw.Fit(x, 3, WhiteningKind::kZca).ok());
  EXPECT_FALSE(gw.Fit(x, 0, WhiteningKind::kZca).ok());
}

TEST(GroupWhiteningTest2, ApplyOnUnseenRows) {
  // Cold-start path: fit on one set, apply to held-out rows; held-out rows
  // should land in roughly the same standardized range.
  Rng rng(41);
  const Matrix all = AnisotropicCloud(600, 6, &rng);
  const Matrix fit_part = all.RowSlice(0, 500);
  const Matrix new_part = all.RowSlice(500, 600);
  GroupWhitening gw;
  ASSERT_TRUE(gw.Fit(fit_part, 1, WhiteningKind::kZca, 1e-8).ok());
  const Matrix z_new = gw.Apply(new_part);
  const Matrix cov = linalg::Covariance(z_new);
  for (std::size_t i = 0; i < cov.rows(); ++i) {
    EXPECT_GT(cov(i, i), 0.3);
    EXPECT_LT(cov(i, i), 3.0);
  }
}

// ---------------------------------------------------------------------------
// Flow whitening (BERT-flow surrogate)
// ---------------------------------------------------------------------------

TEST(FlowWhiteningTest, InverseNormalCdfKnownValues) {
  EXPECT_NEAR(FlowWhitening::InverseNormalCdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(FlowWhitening::InverseNormalCdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(FlowWhitening::InverseNormalCdf(0.025), -1.959964, 1e-4);
}

TEST(FlowWhiteningTest, GaussianizesSkewedData) {
  Rng rng(42);
  // Log-normal-ish, heavily skewed input.
  Matrix x(500, 4);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = std::exp(rng.Gaussian(0.0, 1.0));
  FlowWhitening flow;
  ASSERT_TRUE(flow.Fit(x, 3).ok());
  const Matrix z = flow.Apply(x);
  const IsotropyDiagnostics diag = MeasureIsotropy(z);
  EXPECT_LT(diag.max_diag_error, 0.1);
  EXPECT_LT(diag.max_offdiag_cov, 0.1);
  // Marginal skewness should be near zero after Gaussianization.
  for (std::size_t c = 0; c < 4; ++c) {
    const std::vector<double> col = z.Col(c);
    const double mean = linalg::Mean(col);
    const double sd = std::sqrt(linalg::Variance(col));
    double skew = 0.0;
    for (double v : col) skew += std::pow((v - mean) / sd, 3.0);
    skew /= static_cast<double>(col.size());
    EXPECT_LT(std::fabs(skew), 0.3) << "dim " << c;
  }
}

TEST(FlowWhiteningTest, ApplyOnNewDataClampsToSupport) {
  Rng rng(43);
  const Matrix x = AnisotropicCloud(300, 4, &rng);
  FlowWhitening flow;
  ASSERT_TRUE(flow.Fit(x, 2).ok());
  Matrix out_of_support(2, 4, 1e6);
  const Matrix z = flow.Apply(out_of_support);
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_TRUE(std::isfinite(z.data()[i]));
  }
}

TEST(FlowWhiteningTest, RejectsTinyInput) {
  FlowWhitening flow;
  EXPECT_FALSE(flow.Fit(Matrix(4, 3)).ok());
}

// ---------------------------------------------------------------------------
// Parametric whitening
// ---------------------------------------------------------------------------

TEST(ParametricWhiteningTest, InitiallyCentersAtMean) {
  Rng rng(44);
  Matrix x = rng.GaussianMatrix(50, 4, 1.0);
  for (std::size_t r = 0; r < 50; ++r) x(r, 0) += 7.0;
  ParametricWhitening pw(4, 4, linalg::ColumnMean(x), &rng);
  const Matrix z = pw.Forward(x);
  // Output = centered * W, so the output mean is ~0 regardless of W.
  const std::vector<double> mean = linalg::ColumnMean(z);
  for (double m : mean) EXPECT_NEAR(m, 0.0, 1e-9);
}

TEST(ParametricWhiteningTest, GradCheck) {
  Rng rng(45);
  Matrix x = rng.GaussianMatrix(6, 3, 1.0);
  ParametricWhitening pw(3, 2, linalg::ColumnMean(x), &rng);
  const Matrix w = rng.GaussianMatrix(6, 2, 1.0);
  pw.Forward(x);
  std::vector<nn::Parameter*> params;
  pw.CollectParameters(&params);
  for (nn::Parameter* p : params) p->ZeroGrad();
  const Matrix dx = pw.Backward(w);
  auto loss = [&]() { return WeightedSum(pw.Forward(x), w); };
  EXPECT_LT(MaxInputGradError(&x, dx, loss), 1e-4);
  for (nn::Parameter* p : params)
    EXPECT_LT(MaxParamGradError(p, p->grad, loss), 1e-4) << p->name;
}

TEST(ParametricWhiteningTest, DoesNotGuaranteeDecorrelation) {
  // The paper's criticism of PW: a linear layer does not whiten by itself.
  Rng rng(46);
  const Matrix x = AnisotropicCloud(300, 6, &rng);
  ParametricWhitening pw(6, 6, linalg::ColumnMean(x), &rng);
  const Matrix z = pw.Forward(x);
  const IsotropyDiagnostics diag = MeasureIsotropy(z);
  EXPECT_GT(diag.max_offdiag_cov + diag.max_diag_error, 0.2);
}

// ---------------------------------------------------------------------------
// Projection heads and encoders
// ---------------------------------------------------------------------------

class HeadKindTest : public ::testing::TestWithParam<HeadKind> {};

TEST_P(HeadKindTest, ForwardShape) {
  Rng rng(47);
  ProjectionHead head(6, 4, GetParam(), &rng);
  const Matrix x = rng.GaussianMatrix(9, 6, 1.0);
  const Matrix y = head.Forward(x);
  EXPECT_EQ(y.rows(), 9u);
  EXPECT_EQ(y.cols(), 4u);
}

TEST_P(HeadKindTest, GradCheck) {
  Rng rng(48);
  ProjectionHead head(4, 3, GetParam(), &rng);
  Matrix x = rng.GaussianMatrix(5, 4, 1.0);
  const Matrix w = rng.GaussianMatrix(5, 3, 1.0);
  head.Forward(x);
  std::vector<nn::Parameter*> params;
  head.CollectParameters(&params);
  for (nn::Parameter* p : params) p->ZeroGrad();
  const Matrix dx = head.Backward(w);
  auto loss = [&]() { return WeightedSum(head.Forward(x), w); };
  EXPECT_LT(MaxInputGradError(&x, dx, loss), 2e-4);
  for (nn::Parameter* p : params)
    EXPECT_LT(MaxParamGradError(p, p->grad, loss), 2e-4) << p->name;
}

TEST_P(HeadKindTest, ParameterCountPositive) {
  Rng rng(49);
  ProjectionHead head(6, 4, GetParam(), &rng);
  std::vector<nn::Parameter*> params;
  head.CollectParameters(&params);
  EXPECT_FALSE(params.empty());
}

INSTANTIATE_TEST_SUITE_P(AllHeads, HeadKindTest,
                         ::testing::Values(HeadKind::kLinear, HeadKind::kMlp1,
                                           HeadKind::kMlp2, HeadKind::kMlp3,
                                           HeadKind::kMoe));

TEST(HeadKindTest2, DeeperHeadsHaveMoreParameters) {
  Rng rng(50);
  auto count = [&rng](HeadKind kind) {
    ProjectionHead head(8, 4, kind, &rng);
    std::vector<nn::Parameter*> params;
    head.CollectParameters(&params);
    std::size_t n = 0;
    for (nn::Parameter* p : params) n += p->NumElements();
    return n;
  };
  EXPECT_LT(count(HeadKind::kLinear), count(HeadKind::kMlp1));
  EXPECT_LT(count(HeadKind::kMlp1), count(HeadKind::kMlp2));
  EXPECT_LT(count(HeadKind::kMlp2), count(HeadKind::kMlp3));
}

TEST(TextFeatureEncoderTest, ShapeAndGradientFlow) {
  Rng rng(51);
  const Matrix features = rng.GaussianMatrix(12, 6, 1.0);
  TextFeatureEncoder enc(features, 4, HeadKind::kMlp2, &rng);
  EXPECT_EQ(enc.num_items(), 12u);
  EXPECT_EQ(enc.output_dim(), 4u);
  const Matrix v = enc.Forward(false);
  EXPECT_EQ(v.rows(), 12u);
  std::vector<nn::Parameter*> params;
  enc.CollectParameters(&params);
  for (nn::Parameter* p : params) p->ZeroGrad();
  enc.Backward(Matrix(12, 4, 1.0));
  double grad_norm = 0.0;
  for (nn::Parameter* p : params) grad_norm += p->grad.FrobeniusNorm();
  EXPECT_GT(grad_norm, 0.0);
}

class EnsembleKindTest : public ::testing::TestWithParam<EnsembleKind> {};

TEST_P(EnsembleKindTest, ForwardShape) {
  Rng rng(52);
  const Matrix z1 = rng.GaussianMatrix(10, 6, 1.0);
  const Matrix z2 = rng.GaussianMatrix(10, 6, 1.0);
  WhitenRecPlusEncoder enc(z1, z2, 4, GetParam(), HeadKind::kMlp2, &rng);
  const Matrix v = enc.Forward(false);
  EXPECT_EQ(v.rows(), 10u);
  EXPECT_EQ(v.cols(), 4u);
}

TEST_P(EnsembleKindTest, GradCheckParameters) {
  Rng rng(53);
  const Matrix z1 = rng.GaussianMatrix(4, 3, 1.0);
  const Matrix z2 = rng.GaussianMatrix(4, 3, 1.0);
  WhitenRecPlusEncoder enc(z1, z2, 2, GetParam(), HeadKind::kMlp1, &rng);
  const Matrix w = rng.GaussianMatrix(4, 2, 1.0);
  enc.Forward(true);
  std::vector<nn::Parameter*> params;
  enc.CollectParameters(&params);
  for (nn::Parameter* p : params) p->ZeroGrad();
  enc.Backward(w);
  auto loss = [&]() { return WeightedSum(enc.Forward(true), w); };
  for (nn::Parameter* p : params)
    EXPECT_LT(MaxParamGradError(p, p->grad, loss), 2e-4) << p->name;
}

INSTANTIATE_TEST_SUITE_P(AllEnsembles, EnsembleKindTest,
                         ::testing::Values(EnsembleKind::kSum,
                                           EnsembleKind::kConcat,
                                           EnsembleKind::kAttn));

TEST(WhitenRecFactoryTest, MakeWhitenRecEncoder) {
  Rng rng(54);
  const Matrix features = AnisotropicCloud(60, 8, &rng);
  WhitenRecConfig config;
  config.out_dim = 4;
  auto enc = MakeWhitenRecEncoder(features, config, &rng);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc.value()->num_items(), 60u);
  EXPECT_EQ(enc.value()->output_dim(), 4u);
}

TEST(WhitenRecFactoryTest, MakeWhitenRecPlusWithRawBranch) {
  Rng rng(55);
  const Matrix features = AnisotropicCloud(60, 8, &rng);
  WhitenRecConfig config;
  config.out_dim = 4;
  config.relaxed_groups = 0;  // Raw branch (Fig. 8)
  auto enc = MakeWhitenRecPlusEncoder(features, config, &rng);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc.value()->num_items(), 60u);
}

TEST(WhitenRecFactoryTest, InvalidGroupsPropagateError) {
  Rng rng(56);
  const Matrix features = AnisotropicCloud(60, 8, &rng);
  WhitenRecConfig config;
  config.full_groups = 3;  // does not divide 8
  EXPECT_FALSE(MakeWhitenRecEncoder(features, config, &rng).ok());
}

TEST(MoEPwEncoderTest, ForwardShapeAndGradFlow) {
  Rng rng(57);
  const Matrix features = rng.GaussianMatrix(15, 6, 1.0);
  MoEPwEncoder enc(features, 4, 3, &rng);
  const Matrix v = enc.Forward(true);
  EXPECT_EQ(v.rows(), 15u);
  EXPECT_EQ(v.cols(), 4u);
  std::vector<nn::Parameter*> params;
  enc.CollectParameters(&params);
  for (nn::Parameter* p : params) p->ZeroGrad();
  enc.Backward(Matrix(15, 4, 0.5));
  double norm = 0.0;
  for (nn::Parameter* p : params) norm += p->grad.FrobeniusNorm();
  EXPECT_GT(norm, 0.0);
}

TEST(PwEnsembleEncoderTest, GradCheck) {
  Rng rng(58);
  const Matrix features = rng.GaussianMatrix(5, 4, 1.0);
  PwEnsembleEncoder enc(features, 3, HeadKind::kMlp1, &rng);
  const Matrix w = rng.GaussianMatrix(5, 3, 1.0);
  enc.Forward(true);
  std::vector<nn::Parameter*> params;
  enc.CollectParameters(&params);
  for (nn::Parameter* p : params) p->ZeroGrad();
  enc.Backward(w);
  auto loss = [&]() { return WeightedSum(enc.Forward(true), w); };
  for (nn::Parameter* p : params)
    EXPECT_LT(MaxParamGradError(p, p->grad, loss), 2e-4) << p->name;
}

TEST(NamesTest, HumanReadableNames) {
  EXPECT_STREQ(WhiteningKindName(WhiteningKind::kZca), "ZCA");
  EXPECT_STREQ(WhiteningKindName(WhiteningKind::kCholesky), "CD");
  EXPECT_STREQ(HeadKindName(HeadKind::kMlp2), "MLP-2");
  EXPECT_STREQ(EnsembleKindName(EnsembleKind::kSum), "Sum");
}

// ---------------------------------------------------------------------------
// Rank-k truncated whitening (compressed inference, DESIGN.md §12)
// ---------------------------------------------------------------------------

TEST(TruncatedWhiteningTest, TruncatedCovarianceIsIdentityK) {
  Rng rng(71);
  const Matrix x = AnisotropicCloud(600, 8, &rng);
  WhiteningOptions options;
  options.kind = WhiteningKind::kPca;
  options.epsilon = 1e-8;
  options.rank = 3;
  auto fitted = FitWhiteningAdvanced(x, options);
  ASSERT_TRUE(fitted.ok());
  EXPECT_EQ(fitted.value().out_dims(), 3u);
  const Matrix z = ApplyWhitening(fitted.value(), x);
  ASSERT_EQ(z.cols(), 3u);
  const IsotropyDiagnostics diag = MeasureIsotropy(z);
  EXPECT_LT(diag.max_diag_error, 1e-4);
  EXPECT_LT(diag.max_offdiag_cov, 1e-4);
}

TEST(TruncatedWhiteningTest, TruncatedPhiIsPrefixOfFullPcaPhi) {
  Rng rng(72);
  const Matrix x = AnisotropicCloud(500, 6, &rng);
  auto full = FitWhitening(x, WhiteningKind::kPca, 1e-6);
  ASSERT_TRUE(full.ok());
  WhiteningOptions options;
  options.kind = WhiteningKind::kPca;
  options.epsilon = 1e-6;
  options.rank = 2;
  auto truncated = FitWhiteningAdvanced(x, options);
  ASSERT_TRUE(truncated.ok());
  // SymmetricEigen orders eigenvalues descending, so the rank-k map is the
  // leading rows of the full PCA map BITWISE — what lets bench_compression
  // slice columns of the full-rank whitened table instead of refitting.
  ASSERT_EQ(truncated.value().phi.rows(), 2u);
  for (std::size_t i = 0; i < 2u; ++i) {
    for (std::size_t j = 0; j < 6u; ++j) {
      EXPECT_EQ(truncated.value().phi(i, j), full.value().phi(i, j));
    }
  }
}

TEST(TruncatedWhiteningTest, ZcaTruncationDegeneratesToPcaBasis) {
  Rng rng(73);
  const Matrix x = AnisotropicCloud(500, 6, &rng);
  WhiteningOptions zca;
  zca.kind = WhiteningKind::kZca;
  zca.epsilon = 1e-6;
  zca.rank = 3;
  WhiteningOptions pca = zca;
  pca.kind = WhiteningKind::kPca;
  auto a = FitWhiteningAdvanced(x, zca);
  auto b = FitWhiteningAdvanced(x, pca);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const Matrix diff = linalg::Sub(a.value().phi, b.value().phi);
  EXPECT_EQ(diff.MaxAbs(), 0.0);
}

TEST(TruncatedWhiteningTest, FullRankValuesLeaveFitUntouched) {
  Rng rng(74);
  const Matrix x = AnisotropicCloud(400, 5, &rng);
  auto reference = FitWhitening(x, WhiteningKind::kZca, 1e-6);
  ASSERT_TRUE(reference.ok());
  for (std::size_t rank : {std::size_t{0}, std::size_t{5}}) {
    WhiteningOptions options;
    options.kind = WhiteningKind::kZca;
    options.epsilon = 1e-6;
    options.rank = rank;
    auto fitted = FitWhiteningAdvanced(x, options);
    ASSERT_TRUE(fitted.ok());
    EXPECT_EQ(fitted.value().out_dims(), 5u);
    const Matrix diff = linalg::Sub(fitted.value().phi, reference.value().phi);
    EXPECT_EQ(diff.MaxAbs(), 0.0) << "rank=" << rank;
  }
}

// PCA reconstruction from the truncated fit: recover the orthonormal basis
// by normalizing phi's rows (phi_i = u_i / sqrt(lambda_i)), project the
// centered data, and measure the squared residual. Adding a dimension can
// only remove the newly-explained component from the residual, so the error
// must be non-increasing in k.
TEST(TruncatedWhiteningTest, ReconstructionErrorMonotoneInRank) {
  Rng rng(75);
  const std::size_t d = 8;
  const Matrix x = AnisotropicCloud(600, d, &rng);
  double prev_error = -1.0;
  std::vector<double> errors;
  for (std::size_t rank = 1; rank <= d; ++rank) {
    WhiteningOptions options;
    options.kind = WhiteningKind::kPca;
    options.epsilon = 0.0;
    options.rank = rank;
    auto fitted = FitWhiteningAdvanced(x, options);
    ASSERT_TRUE(fitted.ok());
    const FittedWhitening& w = fitted.value();
    // Orthonormal basis rows u_i from phi rows.
    Matrix basis = w.phi;
    for (std::size_t i = 0; i < basis.rows(); ++i) {
      double norm = 0.0;
      for (std::size_t j = 0; j < d; ++j) norm += basis(i, j) * basis(i, j);
      norm = std::sqrt(norm);
      ASSERT_GT(norm, 0.0);
      for (std::size_t j = 0; j < d; ++j) basis(i, j) /= norm;
    }
    double error = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      std::vector<double> centered(d);
      for (std::size_t j = 0; j < d; ++j) {
        centered[j] = x(r, j) - w.mean[j];
      }
      std::vector<double> recon(d, 0.0);
      for (std::size_t i = 0; i < basis.rows(); ++i) {
        double coeff = 0.0;
        for (std::size_t j = 0; j < d; ++j) coeff += basis(i, j) * centered[j];
        for (std::size_t j = 0; j < d; ++j) recon[j] += coeff * basis(i, j);
      }
      for (std::size_t j = 0; j < d; ++j) {
        const double resid = centered[j] - recon[j];
        error += resid * resid;
      }
    }
    if (prev_error >= 0.0) {
      EXPECT_LE(error, prev_error + 1e-9) << "rank=" << rank;
    }
    prev_error = error;
    errors.push_back(error);
  }
  // Full rank reconstructs (numerically) exactly; rank 1 leaves most of the
  // anisotropic cloud unexplained, so the decrease is also non-trivial.
  EXPECT_LT(errors.back(), 1e-12 * errors.front());
}

TEST(TruncatedWhiteningTest, RejectsUnsupportedCombinations) {
  Rng rng(76);
  const Matrix x = AnisotropicCloud(300, 6, &rng);
  WhiteningOptions options;
  options.epsilon = 1e-6;
  options.rank = 3;
  options.kind = WhiteningKind::kCholesky;
  EXPECT_FALSE(FitWhiteningAdvanced(x, options).ok());
  options.kind = WhiteningKind::kBatchNorm;
  EXPECT_FALSE(FitWhiteningAdvanced(x, options).ok());
  options.kind = WhiteningKind::kZca;
  options.newton_iterations = 8;
  EXPECT_FALSE(FitWhiteningAdvanced(x, options).ok());
  options.newton_iterations = 0;
  options.rank = 7;  // > d
  EXPECT_FALSE(FitWhiteningAdvanced(x, options).ok());
  // Group whitening only truncates the single-group (full) branch.
  GroupWhitening group;
  EXPECT_FALSE(group.Fit(x, 2, WhiteningKind::kZca, 1e-6, 3).ok());
  EXPECT_TRUE(group.Fit(x, 1, WhiteningKind::kZca, 1e-6, 3).ok());
  EXPECT_EQ(group.Apply(x).cols(), 3u);
}

TEST(TruncatedWhiteningTest, IncrementalTruncatedFitMatchesBatch) {
  Rng rng(77);
  const Matrix x = AnisotropicCloud(300, 6, &rng);
  IncrementalWhitening acc(6);
  acc.Add(x.RowSlice(0, 111));
  acc.Add(x.RowSlice(111, 300));
  WhiteningOptions options;
  options.kind = WhiteningKind::kPca;
  options.epsilon = 1e-6;
  options.rank = 3;
  auto inc = acc.Fit(options);
  auto batch = FitWhiteningAdvanced(x, options);
  ASSERT_TRUE(inc.ok());
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(inc.value().out_dims(), 3u);
  const Matrix diff = linalg::Sub(inc.value().phi, batch.value().phi);
  EXPECT_LT(diff.MaxAbs(), 1e-6 * std::max(1.0, batch.value().phi.MaxAbs()));
}

TEST(TruncatedWhiteningTest, EncoderFactoryHonorsWhitenK) {
  Rng rng(78);
  const Matrix features = AnisotropicCloud(80, 8, &rng);
  WhitenRecConfig config;
  config.out_dim = 4;
  config.head = HeadKind::kLinear;
  config.whiten_k = 3;
  auto encoder = MakeWhitenRecEncoder(features, config, &rng);
  ASSERT_TRUE(encoder.ok());
  auto* text = static_cast<TextFeatureEncoder*>(encoder.value().get());
  EXPECT_EQ(text->features().cols(), 3u);
  EXPECT_EQ(text->output_dim(), 4u);
  // WhitenRec+ needs equal branch widths; truncation is rejected up front.
  EXPECT_FALSE(MakeWhitenRecPlusEncoder(features, config, &rng).ok());
}

}  // namespace
}  // namespace whitenrec
