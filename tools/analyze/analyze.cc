#include "tools/analyze/analyze.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tools/analyze/source_util.h"
#include "tools/analyze/tokenize.h"

namespace whitenrec {
namespace analyze {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

bool SuppressedAt(const std::vector<std::string>& raw_lines,
                  std::size_t line_no, const std::string& rule) {
  for (std::size_t l = (line_no > 1 ? line_no - 1 : 1);
       l <= line_no && l <= raw_lines.size(); ++l) {
    const std::set<std::string> allows = ParseAllows(raw_lines[l - 1]);
    if (allows.count(rule) || allows.count("*")) return true;
  }
  return false;
}

void ReportFinding(const std::vector<std::string>& raw_lines,
                   const std::string& file, std::size_t line_no,
                   const std::string& pass, const std::string& rule,
                   const std::string& message,
                   std::vector<Finding>* findings) {
  if (SuppressedAt(raw_lines, line_no, rule)) return;
  findings->push_back(Finding{file, line_no, pass, rule, message});
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

std::string ModuleOf(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return "";
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return "";
  return path.substr(4, slash - 4);
}

int LayerRank(const std::string& module) {
  if (module == "core") return 0;
  if (module == "linalg") return 1;
  if (module == "nn" || module == "data" || module == "text") return 2;
  if (module == "whitening") return 3;
  if (module == "seqrec" || module == "eval" || module == "analysis") {
    return 4;
  }
  if (module == "retrieval") return 5;
  if (module == "serve") return 6;
  return -1;
}

AnalyzeResult AnalyzeTree(const SourceTree& tree, const TreeInputs& inputs) {
  AnalyzeResult result;
  result.files_scanned = tree.files.size();
  for (const std::vector<Finding>& pass_findings :
       {CheckLayering(tree), CheckKnobs(tree, inputs), CheckHotAlloc(tree)}) {
    result.findings.insert(result.findings.end(), pass_findings.begin(),
                           pass_findings.end());
  }
  SortFindings(&result.findings);
  return result;
}

SourceTree LoadTree(const std::string& root) {
  namespace fs = std::filesystem;
  SourceTree tree;
  std::vector<std::string> paths;
  for (const char* dir : {"src", "tests", "bench", "examples"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      paths.push_back(
          fs::relative(entry.path(), fs::path(root)).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& rel : paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    tree.files.push_back(SourceFile{rel, ss.str()});
  }
  return tree;
}

}  // namespace analyze
}  // namespace whitenrec
