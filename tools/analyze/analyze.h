#ifndef WHITENREC_TOOLS_ANALYZE_ANALYZE_H_
#define WHITENREC_TOOLS_ANALYZE_ANALYZE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/status.h"

// Cross-TU static analyzer for the whitenrec tree (DESIGN.md §11). Where
// tools/lint checks one file at a time, the passes here need the whole tree
// at once: the include graph, the set of every WHITENREC_* env read, the
// registry that documents them. Three passes:
//
//   layering  the module DAG must respect the layer order
//                 core < linalg < {nn, data, text} < whitening <
//                 {seqrec, eval, analysis} < retrieval < serve
//             (a file may include same-or-lower-rank modules only), and the
//             file-level include graph must be acyclic.
//               rules: upward-include, include-cycle
//   knobs     every WHITENREC_* env knob read in src/ bench/ tests/ must be
//             declared in tools/analyze/knobs.def, documented in README.md,
//             actually read somewhere, and parsed strictly (a set-but-
//             malformed value must abort loudly, never silently fall back).
//               rules: unregistered-knob, dead-knob, undocumented-knob,
//                      lax-knob-parse
//   hotalloc  no Matrix / std::vector construction inside ParallelFor /
//             Stream(Quant)MatMulTransB* lambdas or RowBlockHook /
//             ScoreRowsFn / ScorePanelFn bodies — per-iteration allocation in the hot
//             kernels belongs in the linalg::Workspace arena or hoisted out.
//               rule: hot-alloc
//
// A finding on line N is suppressed by `whitenrec-analyze: allow(<rule>)`
// (or the equivalent whitenrec-lint spelling) on line N or N-1; knobs.def
// registry findings honor the same comment inside knobs.def.
//
// Passes operate on an abstract SourceTree (path + contents pairs) so tests
// can fabricate trees with seeded violations without touching the disk.

namespace whitenrec {
namespace analyze {

struct SourceFile {
  std::string path;      // repo-relative, '/' separators, e.g. "src/nn/gru.cc"
  std::string contents;  // full file text
};

struct SourceTree {
  std::vector<SourceFile> files;
};

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string pass;      // "layering" | "knobs" | "hotalloc"
  std::string rule;
  std::string message;
};

// Extra non-C++ inputs consumed by the knobs pass.
struct TreeInputs {
  std::string knobs_def;  // contents of tools/analyze/knobs.def
  std::string readme;     // contents of README.md
};

// One registry entry parsed from knobs.def; exposed for tests.
struct KnobDecl {
  std::string name;      // WHITENREC_*
  std::string type;      // size | u64 | double | enum | string | flag | cmake
  std::string owner;     // declaring file, informational
  std::size_t line = 0;  // 1-based line in knobs.def
};

// Parses knobs.def. Malformed lines come back as findings against
// `def_path` (rule "knob-registry-syntax") rather than being dropped.
std::vector<KnobDecl> ParseKnobsDef(const std::string& text,
                                    const std::string& def_path,
                                    std::vector<Finding>* findings);

// The individual passes. Each returns findings sorted by (file, line).
std::vector<Finding> CheckLayering(const SourceTree& tree);
std::vector<Finding> CheckKnobs(const SourceTree& tree,
                                const TreeInputs& inputs);
std::vector<Finding> CheckHotAlloc(const SourceTree& tree);

struct AnalyzeResult {
  std::size_t files_scanned = 0;
  std::vector<Finding> findings;  // all passes, sorted by (file, line)
};

// Runs every pass over the tree.
AnalyzeResult AnalyzeTree(const SourceTree& tree, const TreeInputs& inputs);

// Loads src/ tests/ bench/ examples/ (.h/.hpp/.cc/.cpp) under `root` into a
// SourceTree, sorted by path.
SourceTree LoadTree(const std::string& root);

// ANALYZE.json: serializes `result` (schema "whitenrec.analyze.v1").
std::string ReportJson(const AnalyzeResult& result);

// Validates a serialized report against the schema: required keys, finding
// shape, rule vocabulary, and clean <=> zero findings. The analyze binary
// self-checks its own output through this before writing it.
Status ValidateAnalyzeReport(const std::string& json);

}  // namespace analyze
}  // namespace whitenrec

#endif  // WHITENREC_TOOLS_ANALYZE_ANALYZE_H_
