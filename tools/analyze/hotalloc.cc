#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/analyze.h"
#include "tools/analyze/source_util.h"
#include "tools/analyze/tokenize.h"

// Hot-path allocation pass. The kernels' inner loops run once per worker
// chunk / score tile, so a Matrix or std::vector constructed inside them
// turns into O(chunks) heap traffic that the linalg::Workspace arena exists
// to absorb (DESIGN.md §4). The pass finds lambda bodies in hot positions —
// arguments of core::ParallelFor and the Stream(Quant)MatMulTransB family, and
// initializers of RowBlockHook / ScoreRowsFn / ScorePanelFn callbacks — and
// flags Matrix / std::vector constructions inside them (rule hot-alloc).
//
// Declared reference paths (the materialized scoring fallback, tests) carry
// a `whitenrec-analyze: allow(hot-alloc)` annotation stating why the
// allocation is intended; everything else either hoists the buffer or takes
// it from the Workspace arena. Scope: src/ only — tests and benches
// construct scratch wherever convenient.

namespace whitenrec {
namespace analyze {
namespace {

const std::set<std::string>& HotCallees() {
  static const std::set<std::string> kCallees = {
      "ParallelFor",           "ParallelReduceSum",
      "StreamMatMulTransB",    "StreamMatMulTransBTiles",
      "StreamMatMulTransBPanels", "StreamQuantMatMulTransB",
      "StreamQuantMatMulTransBTiles"};
  return kCallees;
}

const std::set<std::string>& HotCallbackTypes() {
  static const std::set<std::string> kTypes = {"RowBlockHook", "ScoreRowsFn",
                                               "ScorePanelFn"};
  return kTypes;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// Finds the index of the token matching `open` ("(" or "{" or "[") starting
// at `at` (which must hold the opener), or tokens.size() on imbalance.
std::size_t MatchForward(const std::vector<Token>& tokens, std::size_t at,
                         const char* open, const char* close) {
  int depth = 0;
  for (std::size_t i = at; i < tokens.size(); ++i) {
    if (IsPunct(tokens[i], open)) ++depth;
    if (IsPunct(tokens[i], close) && --depth == 0) return i;
  }
  return tokens.size();
}

// Template-argument matcher starting at a '<' token. Maximal munch lexes the
// closer of nested template lists as one ">>" token, so angle depth must
// treat it as two closers (the same disambiguation real C++ parsers do).
std::size_t MatchAngle(const std::vector<Token>& tokens, std::size_t at) {
  int depth = 0;
  for (std::size_t i = at; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return i;
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return i;
    } else if (t.text == ";") {
      return tokens.size();  // statement ended: was a comparison, not a type
    }
  }
  return tokens.size();
}

// Given `at` pointing at the '[' of a lambda introducer, returns the token
// range [body_open, body_close] of its brace body, or (0, 0) when no body
// follows (e.g. a plain subscript expression).
std::pair<std::size_t, std::size_t> LambdaBody(
    const std::vector<Token>& tokens, std::size_t at) {
  const std::size_t intro_end = MatchForward(tokens, at, "[", "]");
  if (intro_end >= tokens.size()) return {0, 0};
  std::size_t i = intro_end + 1;
  if (i < tokens.size() && IsPunct(tokens[i], "(")) {
    i = MatchForward(tokens, i, "(", ")");
    if (i >= tokens.size()) return {0, 0};
    ++i;
  }
  // Skip specifiers/trailing return type up to the body brace; give up
  // quickly so `arr[idx] + 1` never scans far.
  for (std::size_t guard = 0; guard < 16 && i < tokens.size(); ++guard, ++i) {
    if (IsPunct(tokens[i], "{")) {
      const std::size_t close = MatchForward(tokens, i, "{", "}");
      if (close >= tokens.size()) return {0, 0};
      return {i, close};
    }
    if (IsPunct(tokens[i], ";") || IsPunct(tokens[i], ")") ||
        IsPunct(tokens[i], ",") || IsPunct(tokens[i], "=")) {
      return {0, 0};  // not a lambda after all
    }
  }
  return {0, 0};
}

// Scans a lambda body token range for allocation patterns:
//   Matrix <ident> ( | { | =        construction of a dense matrix
//   vector < ... > <ident> ( | {    sized/filled vector construction
// Parameters (`const Matrix& m`) and default-constructed empties
// (`std::vector<T> v;`) don't match; the latter allocate nothing until
// filled, and flagging them would outlaw the reserve-and-reuse idiom the
// kernels actually want.
void ScanBody(const SourceFile& file, const std::vector<Token>& tokens,
              std::size_t begin, std::size_t end,
              const std::vector<std::string>& raw_lines,
              const std::string& context, std::vector<Finding>* findings) {
  for (std::size_t i = begin; i + 2 <= end; ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokKind::kIdent) continue;
    std::size_t decl_ident = 0;
    if (t.text == "Matrix" && tokens[i + 1].kind == TokKind::kIdent) {
      decl_ident = i + 1;
    } else if (t.text == "vector" && IsPunct(tokens[i + 1], "<")) {
      const std::size_t close = MatchAngle(tokens, i + 1);
      if (close < end && close + 1 < tokens.size() &&
          tokens[close + 1].kind == TokKind::kIdent) {
        decl_ident = close + 1;
      }
    }
    if (decl_ident == 0 || decl_ident + 1 >= tokens.size()) continue;
    const Token& after = tokens[decl_ident + 1];
    if (!IsPunct(after, "(") && !IsPunct(after, "{") && !IsPunct(after, "=")) {
      continue;
    }
    ReportFinding(raw_lines, file.path, t.line, "hotalloc", "hot-alloc",
                  "allocates a " + t.text + " inside " + context +
                      "; per-chunk construction in a hot kernel belongs in "
                      "the linalg::Workspace arena or hoisted outside the "
                      "parallel region (reference paths may annotate "
                      "whitenrec-analyze: allow(hot-alloc))",
                  findings);
    // Jump past the declarator: a nested vector<vector<..>> type would
    // otherwise re-match on the inner `vector` and double-report.
    i = decl_ident;
  }
}

}  // namespace

std::vector<Finding> CheckHotAlloc(const SourceTree& tree) {
  std::vector<Finding> findings;
  for (const SourceFile& file : tree.files) {
    if (file.path.rfind("src/", 0) != 0) continue;
    const std::vector<Token> tokens = Tokenize(file.contents);
    const std::vector<std::string> raw_lines = SplitLines(file.contents);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const Token& t = tokens[i];
      if (t.kind != TokKind::kIdent) continue;
      if (HotCallees().count(t.text) && i + 1 < tokens.size() &&
          IsPunct(tokens[i + 1], "(")) {
        // Hot call: every lambda in its argument list is a hot region.
        const std::size_t call_end = MatchForward(tokens, i + 1, "(", ")");
        for (std::size_t j = i + 2; j < call_end; ++j) {
          if (!IsPunct(tokens[j], "[")) continue;
          const auto [open, close] = LambdaBody(tokens, j);
          if (open == 0) continue;
          ScanBody(file, tokens, open, close, raw_lines,
                   "a " + t.text + " lambda", &findings);
          j = close;
        }
      } else if (HotCallbackTypes().count(t.text) && i + 2 < tokens.size() &&
                 tokens[i + 1].kind == TokKind::kIdent &&
                 IsPunct(tokens[i + 2], "=")) {
        // `RowBlockHook hook = [...] {...}`: the callback body runs inside
        // the kernel epilogue, same hot contract as a direct lambda arg.
        std::size_t j = i + 3;
        if (j < tokens.size() && IsPunct(tokens[j], "[")) {
          const auto [open, close] = LambdaBody(tokens, j);
          if (open != 0) {
            ScanBody(file, tokens, open, close, raw_lines,
                     "a " + t.text + " callback", &findings);
          }
        }
      }
    }
  }
  SortFindings(&findings);
  return findings;
}

}  // namespace analyze
}  // namespace whitenrec
