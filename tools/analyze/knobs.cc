#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analyze/analyze.h"
#include "tools/analyze/source_util.h"
#include "tools/analyze/tokenize.h"

// Env-knob registry pass. Every WHITENREC_* environment variable the tree
// reads must be (a) declared in tools/analyze/knobs.def, (b) documented in
// README.md, (c) actually read somewhere, and (d) parsed strictly: the
// repo-wide contract (README "Environment knobs") is that a SET but
// MALFORMED value aborts loudly instead of silently running with a default —
// a reproducibility tool that quietly ignores WHITENREC_THREADS=abc has
// already lied about its configuration.
//
// A "read site" is a string literal matching ^WHITENREC_[A-Z0-9_]+$ passed
// as the first argument of a read accessor: std::getenv or one of the strict
// helper wrappers (EnvSize / EnvU64 / EnvSizeOr / EnvDouble / EnvFlag). The
// helpers embody the strict contract; a bare getenv of a numeric or enum
// knob must show its own strtoX-plus-abort handling within the site's
// vicinity (kParseWindow lines) or use a *OrDie parser. type=string knobs
// accept any value, and type=cmake entries are build options (-DWHITENREC_*)
// that never appear as getenv sites; both are exempt from (d), cmake also
// from (c).

namespace whitenrec {
namespace analyze {
namespace {

constexpr std::size_t kParseWindow = 14;  // lines scanned after a bare getenv

const std::set<std::string>& ReadAccessors() {
  static const std::set<std::string> kAccessors = {
      "getenv", "EnvSize", "EnvU64", "EnvSizeOr", "EnvDouble", "EnvFlag"};
  return kAccessors;
}

bool IsNumericType(const std::string& type) {
  return type == "size" || type == "u64" || type == "double";
}

struct KnobSite {
  std::string file;
  std::size_t line = 0;
  std::string name;      // WHITENREC_*
  std::string accessor;  // identifier the literal was an argument of
};

bool IsKnobName(const std::string& value) {
  static const std::regex kName(R"(^WHITENREC_[A-Z0-9_]+$)");
  return std::regex_match(value, kName);
}

// Extracts read sites from one file: literal "WHITENREC_X" in the first-
// argument position of a call, i.e. token pattern `ident ( "WHITENREC_X"`.
// Literals in error messages or comparisons don't match the pattern (they
// follow a comma or operator) and exact-name matching drops embedded
// mentions like "invalid WHITENREC_GEMM value '%s'".
std::vector<KnobSite> ExtractSites(const SourceFile& file) {
  std::vector<KnobSite> sites;
  const std::vector<Token> tokens = Tokenize(file.contents);
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kString) continue;
    const std::string value = StringValue(tokens[i]);
    if (!IsKnobName(value)) continue;
    if (tokens[i - 1].kind != TokKind::kPunct || tokens[i - 1].text != "(") {
      continue;
    }
    if (tokens[i - 2].kind != TokKind::kIdent) continue;
    sites.push_back(
        KnobSite{file.path, tokens[i].line, value, tokens[i - 2].text});
  }
  return sites;
}

// True when the scrubbed lines [site_line, site_line + kParseWindow] show
// strict handling: either delegation to an abort-on-malformed parser
// (...OrDie) or an explicit strtoX parse paired with a loud rejection.
bool StrictParseNearby(const std::vector<std::string>& scrubbed,
                       std::size_t site_line, bool numeric) {
  std::string window;
  const std::size_t last =
      std::min(scrubbed.size(), site_line + kParseWindow);
  for (std::size_t l = site_line; l <= last && l >= 1; ++l) {
    window += scrubbed[l - 1];
    window.push_back('\n');
  }
  if (window.find("OrDie") != std::string::npos) return true;
  const bool rejects_loudly = window.find("abort") != std::string::npos ||
                              window.find("exit") != std::string::npos ||
                              window.find("WR_CHECK") != std::string::npos;
  if (!numeric) return rejects_loudly;  // enum: string compare + abort
  const bool real_parse = window.find("strto") != std::string::npos;
  return real_parse && rejects_loudly;
}

}  // namespace

std::vector<KnobDecl> ParseKnobsDef(const std::string& text,
                                    const std::string& def_path,
                                    std::vector<Finding>* findings) {
  static const std::set<std::string> kTypes = {
      "size", "u64", "double", "enum", "string", "flag", "cmake"};
  std::vector<KnobDecl> decls;
  const std::vector<std::string> lines = SplitLines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ss(line);
    std::string head;
    if (!(ss >> head)) continue;  // blank or comment-only
    KnobDecl decl;
    decl.line = i + 1;
    std::string error;
    if (head != "knob") {
      error = "expected 'knob', got '" + head + "'";
    } else if (!(ss >> decl.name) || !IsKnobName(decl.name)) {
      error = "knob name must match WHITENREC_[A-Z0-9_]+";
    } else {
      std::string attr;
      while (ss >> attr) {
        if (attr.rfind("type=", 0) == 0) {
          decl.type = attr.substr(5);
        } else if (attr.rfind("owner=", 0) == 0) {
          decl.owner = attr.substr(6);
        } else {
          error = "unknown attribute '" + attr + "'";
          break;
        }
      }
      if (error.empty() && !kTypes.count(decl.type)) {
        error = "knob '" + decl.name + "' needs type=" +
                "size|u64|double|enum|string|flag|cmake";
      }
    }
    if (!error.empty()) {
      if (findings != nullptr) {
        ReportFinding(lines, def_path, i + 1, "knobs", "knob-registry-syntax",
                      "knobs.def: " + error, findings);
      }
      continue;
    }
    decls.push_back(decl);
  }
  return decls;
}

std::vector<Finding> CheckKnobs(const SourceTree& tree,
                                const TreeInputs& inputs) {
  const std::string def_path = "tools/analyze/knobs.def";
  std::vector<Finding> findings;
  const std::vector<KnobDecl> decls =
      ParseKnobsDef(inputs.knobs_def, def_path, &findings);
  std::map<std::string, const KnobDecl*> registry;
  const std::vector<std::string> def_lines = SplitLines(inputs.knobs_def);
  for (const KnobDecl& decl : decls) {
    if (registry.count(decl.name)) {
      ReportFinding(def_lines, def_path, decl.line, "knobs",
                    "knob-registry-syntax",
                    "duplicate registry entry for " + decl.name, &findings);
      continue;
    }
    registry[decl.name] = &decl;
  }

  // Pass over the tree: collect read sites, check registration and strict
  // parsing as we go.
  std::set<std::string> knobs_read;
  for (const SourceFile& file : tree.files) {
    const std::vector<KnobSite> sites = ExtractSites(file);
    if (sites.empty()) continue;
    const std::vector<std::string> raw = SplitLines(file.contents);
    const std::vector<std::string> scrubbed =
        SplitLines(ScrubSource(file.contents));
    const bool strict_scope = file.path.rfind("src/", 0) == 0 ||
                              file.path.rfind("bench/", 0) == 0;
    for (const KnobSite& site : sites) {
      if (!ReadAccessors().count(site.accessor)) continue;  // e.g. ScopedEnv
      knobs_read.insert(site.name);
      const auto it = registry.find(site.name);
      if (it == registry.end()) {
        ReportFinding(raw, site.file, site.line, "knobs", "unregistered-knob",
                      site.name + " is read here but not declared in " +
                          def_path + "; add `knob " + site.name +
                          " type=... owner=" + site.file + "`",
                      &findings);
        continue;
      }
      const std::string& type = it->second->type;
      if (strict_scope && site.accessor == "getenv" && type != "string" &&
          type != "flag" && type != "cmake" &&
          !StrictParseNearby(scrubbed, site.line, IsNumericType(type))) {
        ReportFinding(
            raw, site.file, site.line, "knobs", "lax-knob-parse",
            site.name + " (type=" + type + ") is read via bare getenv " +
                "without visible strict parsing; a set-but-malformed value "
                "must abort loudly — use the EnvSize/EnvU64 helper pattern "
                "(strtoX + end-pointer check + abort), not atoi/atol "
                "fallbacks",
            &findings);
      }
    }
  }

  // Registry-side checks: dead entries and documentation drift, anchored at
  // the registry line so the fix is one edit away.
  for (const KnobDecl& decl : decls) {
    if (!registry.count(decl.name) || registry[decl.name] != &decl) {
      continue;  // duplicate already reported
    }
    if (decl.type != "cmake" && !knobs_read.count(decl.name)) {
      ReportFinding(def_lines, def_path, decl.line, "knobs", "dead-knob",
                    decl.name + " is registered but never read in "
                        "src/ bench/ tests/ examples/; delete the entry (and "
                        "its README row) or wire the knob up",
                    &findings);
    }
    static const std::regex kWord(R"([A-Z0-9_]+)");
    bool documented = false;
    for (auto it = std::sregex_iterator(inputs.readme.begin(),
                                        inputs.readme.end(), kWord);
         it != std::sregex_iterator(); ++it) {
      if (it->str() == decl.name) {
        documented = true;
        break;
      }
    }
    if (!documented) {
      ReportFinding(def_lines, def_path, decl.line, "knobs",
                    "undocumented-knob",
                    decl.name + " is registered but not documented in "
                        "README.md; add it to the knob tables",
                    &findings);
    }
  }

  // README-side check: every WHITENREC_* the README documents must exist in
  // the registry (otherwise the docs describe a knob nothing reads). Header
  // guards and table prose are filtered by the same exact-name rule.
  static const std::regex kDocKnob(R"(WHITENREC_[A-Z0-9_]+)");
  const std::vector<std::string> readme_lines = SplitLines(inputs.readme);
  std::set<std::string> reported_doc;
  for (std::size_t i = 0; i < readme_lines.size(); ++i) {
    for (auto it = std::sregex_iterator(readme_lines[i].begin(),
                                        readme_lines[i].end(), kDocKnob);
         it != std::sregex_iterator(); ++it) {
      const std::string name = it->str();
      if (registry.count(name) || reported_doc.count(name)) continue;
      reported_doc.insert(name);
      ReportFinding(readme_lines, "README.md", i + 1, "knobs",
                    "unregistered-knob",
                    name + " is documented in README.md but missing from " +
                        def_path + "; register it or drop the stale row",
                    &findings);
    }
  }

  SortFindings(&findings);
  return findings;
}

}  // namespace analyze
}  // namespace whitenrec
