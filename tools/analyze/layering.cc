#include <algorithm>
#include <map>
#include <regex>
#include <string>
#include <vector>

#include "tools/analyze/analyze.h"
#include "tools/analyze/source_util.h"
#include "tools/analyze/tokenize.h"

// Layering pass: parses every quoted #include in src/, checks each edge
// against the layer order (rule upward-include), and runs a DFS over the
// file-level include graph to reject cycles (rule include-cycle). The order
// is the one src/CMakeLists.txt's link graph realizes:
//
//   rank 0  core          status/check/parallel/faultfs/json foundation
//   rank 1  linalg        dense kernels, rng, workspace, the Scorer seam
//   rank 2  nn data text  model blocks, datasets, the simulated PLM
//   rank 3  whitening     the paper's whitening transforms + item encoders
//   rank 4  seqrec eval analysis
//   rank 5  retrieval     IVF backend implementing the linalg Scorer seam
//   rank 6  serve         online serving on top of everything
//
// An include is legal when rank(included) <= rank(including): a module may
// reach down or sideways (data -> text, seqrec -> eval) but never up — that
// is what keeps the Scorer dependency inverted (seqrec consumes the
// abstract linalg::Scorer; retrieval implements it) instead of regressing
// into a seqrec -> retrieval edge. Modules outside the map (a future
// src/<new>/ not yet ranked) are exempt from the order but still cycle-
// checked, so adding a module fails soft until its rank is declared here.

namespace whitenrec {
namespace analyze {
namespace {

struct IncludeEdge {
  std::string target;    // include path as written, e.g. "core/check.h"
  std::size_t line = 0;  // 1-based
};

// Quoted includes only: system headers carry no layering information.
std::vector<IncludeEdge> ParseIncludes(const SourceFile& file) {
  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  std::vector<IncludeEdge> edges;
  const std::vector<std::string> raw = SplitLines(file.contents);
  const std::vector<std::string> scrubbed =
      SplitLines(ScrubSource(file.contents));
  for (std::size_t i = 0; i < raw.size(); ++i) {
    // The scrubbed line keeps the directive but blanks the path (it is a
    // string literal); requiring the directive there skips #includes that
    // live inside comments or literals in the raw text.
    static const std::regex kDirective(R"(^\s*#\s*include\s*)");
    if (!std::regex_search(scrubbed[i], kDirective)) continue;
    std::smatch m;
    if (std::regex_search(raw[i], m, kInclude)) {
      edges.push_back(IncludeEdge{m[1].str(), i + 1});
    }
  }
  return edges;
}

const char* kLayerOrderText =
    "core < linalg < {nn, data, text} < whitening < "
    "{seqrec, eval, analysis} < retrieval < serve";

}  // namespace

std::vector<Finding> CheckLayering(const SourceTree& tree) {
  std::vector<Finding> findings;

  // Resolve include targets against the tree: "core/check.h" names
  // "src/core/check.h" when that file exists. Only src/ participates.
  std::map<std::string, std::size_t> index;  // path -> tree.files index
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    index[tree.files[i].path] = i;
  }

  struct Node {
    std::vector<std::pair<std::size_t, std::size_t>> edges;  // (file, line)
    std::vector<std::string> raw_lines;
  };
  std::map<std::size_t, Node> graph;  // src/ files only

  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    const SourceFile& file = tree.files[i];
    const std::string module = ModuleOf(file.path);
    if (module.empty()) continue;
    Node& node = graph[i];
    node.raw_lines = SplitLines(file.contents);
    const int from_rank = LayerRank(module);
    for (const IncludeEdge& edge : ParseIncludes(file)) {
      const auto it = index.find("src/" + edge.target);
      if (it == index.end()) continue;  // tools/, generated, or absent
      node.edges.emplace_back(it->second, edge.line);
      const std::string to_module = ModuleOf(tree.files[it->second].path);
      const int to_rank = LayerRank(to_module);
      if (from_rank >= 0 && to_rank >= 0 && to_rank > from_rank) {
        ReportFinding(node.raw_lines, file.path, edge.line, "layering",
                      "upward-include",
                      "module '" + module + "' (rank " +
                          std::to_string(from_rank) + ") includes '" +
                          edge.target + "' from higher-layer module '" +
                          to_module + "' (rank " + std::to_string(to_rank) +
                          "); the layer order is " + kLayerOrderText +
                          " — invert the dependency (see linalg/scorer.h "
                          "for the pattern)",
                      &findings);
      }
    }
  }

  // File-level cycle detection: iterative DFS with tri-color marking. A back
  // edge to a gray node closes a cycle; report it once, anchored at the
  // include that closes it.
  std::map<std::size_t, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::size_t> path;     // current gray stack
  for (const auto& entry : graph) {
    const std::size_t start = entry.first;
    if (color[start] != 0) continue;
    struct Frame {
      std::size_t node;
      std::size_t next_edge;
    };
    std::vector<Frame> stack{{start, 0}};
    color[start] = 1;
    path.push_back(start);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      Node& node = graph[frame.node];
      if (frame.next_edge < node.edges.size()) {
        const auto [to, line] = node.edges[frame.next_edge++];
        if (graph.find(to) == graph.end()) continue;  // non-src include
        if (color[to] == 1) {
          // Cycle: path from `to` to frame.node, closed by this include.
          std::string desc;
          bool in_cycle = false;
          for (std::size_t p : path) {
            if (p == to) in_cycle = true;
            if (in_cycle) desc += tree.files[p].path + " -> ";
          }
          desc += tree.files[to].path;
          ReportFinding(node.raw_lines, tree.files[frame.node].path, line,
                        "layering", "include-cycle",
                        "include cycle: " + desc +
                            "; break it with a forward declaration or by "
                            "moving the shared piece down a layer",
                        &findings);
        } else if (color[to] == 0) {
          color[to] = 1;
          path.push_back(to);
          stack.push_back(Frame{to, 0});
        }
      } else {
        color[frame.node] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
  }

  SortFindings(&findings);
  return findings;
}

}  // namespace analyze
}  // namespace whitenrec
