#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>

#include "core/json.h"
#include "tools/analyze/analyze.h"

// ANALYZE.json writer + schema validator. The writer is string building (no
// dependencies beyond the standard library); the validator round-trips the
// document through core::ParseJson — the same reader that gates the bench
// artifacts — so the analyze binary can refuse to emit a report it could
// not itself parse.

namespace whitenrec {
namespace analyze {
namespace {

const char kSchema[] = "whitenrec.analyze.v1";

const std::set<std::string>& KnownPasses() {
  static const std::set<std::string> kPasses = {"layering", "knobs",
                                                "hotalloc"};
  return kPasses;
}

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {
      "upward-include", "include-cycle",     "unregistered-knob",
      "dead-knob",      "undocumented-knob", "lax-knob-parse",
      "knob-registry-syntax", "hot-alloc"};
  return kRules;
}

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

Status Invalid(const std::string& what) {
  return Status::InvalidArgument("ANALYZE.json: " + what);
}

}  // namespace

std::string ReportJson(const AnalyzeResult& result) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"";
  out += kSchema;
  out += "\",\n";
  out += "  \"files_scanned\": " + std::to_string(result.files_scanned) +
         ",\n";
  out += "  \"passes\": [\"layering\", \"knobs\", \"hotalloc\"],\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": \"";
    AppendEscaped(f.file, &out);
    out += "\", \"line\": " + std::to_string(f.line) + ", \"pass\": \"";
    AppendEscaped(f.pass, &out);
    out += "\", \"rule\": \"";
    AppendEscaped(f.rule, &out);
    out += "\", \"message\": \"";
    AppendEscaped(f.message, &out);
    out += "\"}";
  }
  out += result.findings.empty() ? "],\n" : "\n  ],\n";
  out += std::string("  \"clean\": ") +
         (result.findings.empty() ? "true" : "false") + "\n";
  out += "}\n";
  return out;
}

Status ValidateAnalyzeReport(const std::string& json) {
  core::JsonValue doc;
  Status parsed = core::ParseJson(json, &doc);
  if (!parsed.ok()) return parsed;
  if (doc.kind != core::JsonValue::Kind::kObject) {
    return Invalid("top level must be an object");
  }
  const auto schema = doc.object.find("schema");
  if (schema == doc.object.end() ||
      schema->second.kind != core::JsonValue::Kind::kString ||
      schema->second.str != kSchema) {
    return Invalid(std::string("schema must be \"") + kSchema + "\"");
  }
  const auto files = doc.object.find("files_scanned");
  if (files == doc.object.end() ||
      files->second.kind != core::JsonValue::Kind::kNumber ||
      files->second.number < 1.0 ||
      files->second.number != std::floor(files->second.number)) {
    return Invalid("files_scanned must be a positive integer");
  }
  const auto passes = doc.object.find("passes");
  if (passes == doc.object.end() ||
      passes->second.kind != core::JsonValue::Kind::kArray) {
    return Invalid("passes must be an array");
  }
  std::set<std::string> declared;
  for (const core::JsonValue& p : passes->second.array) {
    if (p.kind != core::JsonValue::Kind::kString ||
        !KnownPasses().count(p.str)) {
      return Invalid("passes entries must be layering|knobs|hotalloc");
    }
    declared.insert(p.str);
  }
  if (declared.size() != KnownPasses().size()) {
    return Invalid("passes must list every pass exactly once");
  }
  const auto findings = doc.object.find("findings");
  if (findings == doc.object.end() ||
      findings->second.kind != core::JsonValue::Kind::kArray) {
    return Invalid("findings must be an array");
  }
  for (const core::JsonValue& f : findings->second.array) {
    if (f.kind != core::JsonValue::Kind::kObject) {
      return Invalid("finding entries must be objects");
    }
    const auto file = f.object.find("file");
    if (file == f.object.end() ||
        file->second.kind != core::JsonValue::Kind::kString ||
        file->second.str.empty()) {
      return Invalid("finding.file must be a non-empty string");
    }
    const auto line = f.object.find("line");
    if (line == f.object.end() ||
        line->second.kind != core::JsonValue::Kind::kNumber ||
        line->second.number < 1.0 ||
        line->second.number != std::floor(line->second.number)) {
      return Invalid("finding.line must be a positive integer");
    }
    const auto pass = f.object.find("pass");
    if (pass == f.object.end() ||
        pass->second.kind != core::JsonValue::Kind::kString ||
        !KnownPasses().count(pass->second.str)) {
      return Invalid("finding.pass must name a known pass");
    }
    const auto rule = f.object.find("rule");
    if (rule == f.object.end() ||
        rule->second.kind != core::JsonValue::Kind::kString ||
        !KnownRules().count(rule->second.str)) {
      return Invalid("finding.rule must name a known rule");
    }
    const auto message = f.object.find("message");
    if (message == f.object.end() ||
        message->second.kind != core::JsonValue::Kind::kString ||
        message->second.str.empty()) {
      return Invalid("finding.message must be a non-empty string");
    }
  }
  const auto clean = doc.object.find("clean");
  if (clean == doc.object.end() ||
      clean->second.kind != core::JsonValue::Kind::kBool) {
    return Invalid("clean must be a boolean");
  }
  if (clean->second.boolean != findings->second.array.empty()) {
    return Invalid("clean must equal (findings == [])");
  }
  return Status::OK();
}

}  // namespace analyze
}  // namespace whitenrec
