#ifndef WHITENREC_TOOLS_ANALYZE_SOURCE_UTIL_H_
#define WHITENREC_TOOLS_ANALYZE_SOURCE_UTIL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/analyze/analyze.h"
#include "tools/analyze/tokenize.h"

// Internal helpers shared by the analyzer passes.

namespace whitenrec {
namespace analyze {

// Splits text into lines (trailing segment kept even without newline).
std::vector<std::string> SplitLines(const std::string& text);

// True when `rule` (or the wildcard "*") is allowed on `line_no` or the line
// above it via a whitenrec-analyze/whitenrec-lint allow() comment.
bool SuppressedAt(const std::vector<std::string>& raw_lines,
                  std::size_t line_no, const std::string& rule);

// Appends a finding unless it is suppressed at its line.
void ReportFinding(const std::vector<std::string>& raw_lines,
                   const std::string& file, std::size_t line_no,
                   const std::string& pass, const std::string& rule,
                   const std::string& message, std::vector<Finding>* findings);

// Sorts findings by (file, line, rule) for stable, diffable output.
void SortFindings(std::vector<Finding>* findings);

// Module name of a src/ path ("src/nn/gru.cc" -> "nn"), or "" when the path
// is not of the form src/<module>/...
std::string ModuleOf(const std::string& path);

// Layer rank of a module per the enforced order (0 = core ... 6 = serve), or
// -1 for modules outside the layering contract.
int LayerRank(const std::string& module);

}  // namespace analyze
}  // namespace whitenrec

#endif  // WHITENREC_TOOLS_ANALYZE_SOURCE_UTIL_H_
