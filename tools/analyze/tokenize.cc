#include "tools/analyze/tokenize.h"

#include <algorithm>
#include <cctype>

namespace whitenrec {
namespace analyze {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Encoding prefixes that turn a following quote into a literal instead of a
// fresh token. The raw-string set is the reason this lexer exists: the old
// scrubber required a non-alnum character before 'R', so u8R"(...)" leaked
// its contents into the scrubbed text.
bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

bool IsEncodingPrefix(const std::string& ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

// Multi-character punctuators, longest first so maximal munch works by
// scanning the table in order.
const char* const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^=",  "##",
};

// One lexed region of the input: [begin, end) plus its classification. The
// token stream and the scrubbed text are both derived from these spans, so
// they agree byte-for-byte on where every literal starts and ends.
struct Span {
  TokKind kind;
  std::size_t begin;
  std::size_t end;
  bool is_space;  // inter-token whitespace, no token emitted
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  std::vector<Span> Run() {
    std::vector<Span> spans;
    while (pos_ < text_.size()) {
      const std::size_t begin = pos_;
      const char c = text_[pos_];
      if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
          c == '\f') {
        ++pos_;
        spans.push_back(Span{TokKind::kPunct, begin, pos_, true});
      } else if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        spans.push_back(Span{TokKind::kComment, begin, pos_, false});
      } else if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        spans.push_back(Span{TokKind::kComment, begin, pos_, false});
      } else if (IsIdentStart(c)) {
        spans.push_back(LexIdentOrLiteral(begin));
      } else if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber();
        spans.push_back(Span{TokKind::kNumber, begin, pos_, false});
      } else if (c == '"') {
        LexQuoted('"');
        spans.push_back(Span{TokKind::kString, begin, pos_, false});
      } else if (c == '\'') {
        LexQuoted('\'');
        spans.push_back(Span{TokKind::kCharLit, begin, pos_, false});
      } else {
        LexPunct();
        spans.push_back(Span{TokKind::kPunct, begin, pos_, false});
      }
    }
    return spans;
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  void LexLineComment() {
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
  }

  void LexBlockComment() {
    pos_ += 2;
    while (pos_ < text_.size()) {
      if (text_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        return;
      }
      ++pos_;
    }
  }

  Span LexIdentOrLiteral(std::size_t begin) {
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    const std::string ident = text_.substr(begin, pos_ - begin);
    if (pos_ < text_.size()) {
      const char q = text_[pos_];
      if (q == '"' && IsRawStringPrefix(ident)) {
        LexRawString();
        return Span{TokKind::kString, begin, pos_, false};
      }
      if (q == '"' && IsEncodingPrefix(ident)) {
        LexQuoted('"');
        return Span{TokKind::kString, begin, pos_, false};
      }
      if (q == '\'' && IsEncodingPrefix(ident)) {
        LexQuoted('\'');
        return Span{TokKind::kCharLit, begin, pos_, false};
      }
    }
    return Span{TokKind::kIdent, begin, pos_, false};
  }

  // pp-number: digits plus identifier chars, '.', digit separators, and a
  // sign directly after an exponent marker. Consuming 1'000'000 here is what
  // keeps the separator quote from opening a bogus char literal.
  void LexNumber() {
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (IsIdentChar(c) || c == '.') {
        ++pos_;
      } else if (c == '\'' && IsIdentChar(Peek(1)) && pos_ > 0 &&
                 IsIdentChar(text_[pos_ - 1])) {
        pos_ += 2;
      } else if ((c == '+' || c == '-') && pos_ > 0 &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E' ||
                  text_[pos_ - 1] == 'p' || text_[pos_ - 1] == 'P')) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  // Ordinary quoted literal with backslash escapes; an unescaped newline or
  // end of input terminates it (keeps the lexer in sync on malformed text).
  void LexQuoted(char quote) {
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\' && pos_ + 1 < text_.size()) {
        pos_ += 2;
      } else if (c == quote) {
        ++pos_;
        return;
      } else if (c == '\n') {
        return;
      } else {
        ++pos_;
      }
    }
  }

  // R"delim( ... )delim" with the prefix already consumed; pos_ is at '"'.
  void LexRawString() {
    ++pos_;
    std::string delim;
    while (pos_ < text_.size() && text_[pos_] != '(' && text_[pos_] != '\n') {
      delim.push_back(text_[pos_]);
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] != '(') return;  // malformed
    ++pos_;
    const std::string closer = ")" + delim + "\"";
    const std::size_t at = text_.find(closer, pos_);
    pos_ = at == std::string::npos ? text_.size() : at + closer.size();
  }

  void LexPunct() {
    for (const char* p : kPuncts) {
      const std::size_t n = std::string(p).size();
      if (text_.compare(pos_, n, p) == 0) {
        pos_ += n;
        return;
      }
    }
    ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<Token> Tokenize(const std::string& contents) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t scanned_to = 0;
  for (const Span& span : Lexer(contents).Run()) {
    line += static_cast<std::size_t>(
        std::count(contents.begin() + static_cast<std::ptrdiff_t>(scanned_to),
                   contents.begin() + static_cast<std::ptrdiff_t>(span.begin),
                   '\n'));
    scanned_to = span.begin;
    if (!span.is_space) {
      Token t;
      t.kind = span.kind;
      t.text = contents.substr(span.begin, span.end - span.begin);
      t.line = line;
      tokens.push_back(std::move(t));
    }
  }
  return tokens;
}

std::string ScrubSource(const std::string& contents) {
  std::string out = contents;
  for (const Span& span : Lexer(contents).Run()) {
    if (span.kind == TokKind::kComment || span.kind == TokKind::kString ||
        span.kind == TokKind::kCharLit) {
      for (std::size_t i = span.begin; i < span.end; ++i) {
        if (out[i] != '\n') out[i] = ' ';
      }
    }
  }
  return out;
}

std::string StringValue(const Token& token) {
  if (token.kind != TokKind::kString) return "";
  const std::size_t open = token.text.find('"');
  const std::size_t close = token.text.rfind('"');
  if (open == std::string::npos || close <= open) return "";
  std::string value = token.text.substr(open + 1, close - open - 1);
  // Raw string: strip the delim( ... )delim wrapper.
  const bool raw = open > 0 && token.text[open - 1] == 'R';
  if (raw) {
    const std::size_t lparen = value.find('(');
    const std::size_t rparen = value.rfind(')');
    if (lparen != std::string::npos && rparen != std::string::npos &&
        rparen >= lparen) {
      value = value.substr(lparen + 1, rparen - lparen - 1);
    }
  }
  return value;
}

std::set<std::string> ParseAllows(const std::string& line) {
  std::set<std::string> rules;
  for (const char* marker :
       {"whitenrec-lint: allow(", "whitenrec-analyze: allow("}) {
    std::size_t pos = line.find(marker);
    if (pos == std::string::npos) continue;
    pos += std::string(marker).size();
    const std::size_t close = line.find(')', pos);
    if (close == std::string::npos) continue;
    std::string rule;
    for (std::size_t i = pos; i <= close; ++i) {
      const char c = line[i];
      if (c == ',' || c == ')') {
        if (!rule.empty()) rules.insert(rule);
        rule.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        rule.push_back(c);
      }
    }
  }
  return rules;
}

}  // namespace analyze
}  // namespace whitenrec
