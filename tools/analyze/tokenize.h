#ifndef WHITENREC_TOOLS_ANALYZE_TOKENIZE_H_
#define WHITENREC_TOOLS_ANALYZE_TOKENIZE_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

// Shared C++ token scanner for the repo's static-analysis tools. Both the
// determinism linter (tools/lint) and the cross-TU analyzer (tools/analyze)
// sit on this one lexer, so "what counts as a string literal" cannot diverge
// between them. The scanner is a real maximal-munch lexer, not a regex pile:
// it understands encoding prefixes on string/char literals (u8"", L'', and
// the u8R"( / LR"( raw-string family the old per-character scrubber
// mis-lexed), digit separators (1'000'000 is one number token, not a char
// literal), and pp-numbers with signed exponents (1e-3).

namespace whitenrec {
namespace analyze {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // pp-numbers, incl. hex / exponents / digit separators
  kString,   // string literal, any encoding prefix, incl. raw strings
  kCharLit,  // character literal, any encoding prefix
  kPunct,    // operators and punctuation (maximal munch, "::" is one token)
  kComment,  // line or block comment, text without the trailing newline
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;      // raw source text, incl. quotes/prefix for literals
  std::size_t line = 0;  // 1-based line of the token's first character
};

// Lexes `contents` into a token stream. Every byte of input is covered by
// exactly one token or by inter-token whitespace; unterminated literals are
// closed at end of input so the scanner never loses sync on partial files.
std::vector<Token> Tokenize(const std::string& contents);

// Replaces comments, string literals, and char literals with spaces while
// preserving line structure (same byte count of '\n', code text untouched).
// This is the scrubbed text the line-oriented lint rules run on.
std::string ScrubSource(const std::string& contents);

// Returns the string-literal value of a kString token (text between the
// outermost quotes, raw-string delimiters stripped), or "" for other kinds.
std::string StringValue(const Token& token);

// Parses tool suppressions from one ORIGINAL (unscrubbed) source line. Both
// spellings are honored by both tools:
//   // whitenrec-lint: allow(rule-a, rule-b)
//   // whitenrec-analyze: allow(rule-a)
// so a file annotated for one tool does not regress under the other.
std::set<std::string> ParseAllows(const std::string& line);

}  // namespace analyze
}  // namespace whitenrec

#endif  // WHITENREC_TOOLS_ANALYZE_TOKENIZE_H_
