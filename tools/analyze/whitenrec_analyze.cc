// Cross-TU static analyzer driver. Loads the tree under --root, runs the
// layering / knobs / hotalloc passes (see analyze.h), prints findings to
// stderr, and writes the schema-validated ANALYZE.json artifact. Wired into
// the build as `check-analyze` and into ctest as the tier-1 analyze.tree
// test, so an upward include or an undocumented env knob fails CI the same
// way a broken unit test does.
//
// Usage: whitenrec_analyze --root <repo-root> [--out <path/ANALYZE.json>]

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/analyze/analyze.h"

namespace {

std::string ReadFileOrEmpty(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr, "usage: %s --root <repo-root> [--out <file>]\n",
                   argv[0]);
      return 2;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  namespace fs = std::filesystem;
  if (out_path.empty()) {
    out_path = (fs::path(root) / "out" / "ANALYZE.json").string();
  }

  const whitenrec::analyze::SourceTree tree =
      whitenrec::analyze::LoadTree(root);
  if (tree.files.empty()) {
    std::fprintf(stderr, "whitenrec_analyze: no sources under %s\n",
                 root.c_str());
    return 2;
  }
  whitenrec::analyze::TreeInputs inputs;
  inputs.knobs_def =
      ReadFileOrEmpty(fs::path(root) / "tools" / "analyze" / "knobs.def");
  inputs.readme = ReadFileOrEmpty(fs::path(root) / "README.md");
  if (inputs.knobs_def.empty()) {
    std::fprintf(stderr,
                 "whitenrec_analyze: missing tools/analyze/knobs.def\n");
    return 2;
  }

  const whitenrec::analyze::AnalyzeResult result =
      whitenrec::analyze::AnalyzeTree(tree, inputs);
  for (const whitenrec::analyze::Finding& f : result.findings) {
    std::fprintf(stderr, "%s:%zu: [%s/%s] %s\n", f.file.c_str(), f.line,
                 f.pass.c_str(), f.rule.c_str(), f.message.c_str());
  }

  // Self-check the artifact against its own schema before writing it.
  const std::string json = whitenrec::analyze::ReportJson(result);
  const whitenrec::Status valid =
      whitenrec::analyze::ValidateAnalyzeReport(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "whitenrec_analyze: report failed self-check: %s\n",
                 valid.message().c_str());
    return 2;
  }
  std::error_code ec;
  fs::create_directories(fs::path(out_path).parent_path(), ec);
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << json;
  if (!out) {
    std::fprintf(stderr, "whitenrec_analyze: cannot write %s\n",
                 out_path.c_str());
    return 2;
  }
  out.close();

  if (!result.findings.empty()) {
    std::fprintf(stderr, "whitenrec_analyze: %zu finding(s) in %zu files\n",
                 result.findings.size(), result.files_scanned);
    return 1;
  }
  std::fprintf(stderr, "whitenrec_analyze: clean (%zu files) -> %s\n",
               result.files_scanned, out_path.c_str());
  return 0;
}
