#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <unordered_set>

#include "tools/analyze/tokenize.h"

namespace whitenrec {
namespace lint {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

// Whole-word occurrence count of `word` in `text`.
std::size_t CountWord(const std::string& text, const std::string& word) {
  std::size_t count = 0;
  std::size_t pos = 0;
  auto is_word = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !is_word(text[end]);
    if (left_ok && right_ok) ++count;
    pos = end;
  }
  return count;
}

// Parses "// whitenrec-lint: allow(rule-a, rule-b)" suppressions from the
// ORIGINAL (unscrubbed) line, since they live inside comments. Shared with
// tools/analyze, which also honors the whitenrec-analyze spelling.
std::set<std::string> ParseAllows(const std::string& line) {
  return analyze::ParseAllows(line);
}

struct FileContext {
  std::string path;
  std::vector<std::string> raw;       // original lines
  std::vector<std::string> scrubbed;  // literals/comments blanked
  std::vector<Finding>* findings;

  bool Suppressed(std::size_t line_no, const std::string& rule) const {
    for (std::size_t l = (line_no > 1 ? line_no - 1 : 1); l <= line_no; ++l) {
      const std::set<std::string> allows = ParseAllows(raw[l - 1]);
      if (allows.count(rule) || allows.count("*")) return true;
    }
    return false;
  }

  void Report(std::size_t line_no, const std::string& rule,
              const std::string& message) const {
    if (Suppressed(line_no, rule)) return;
    findings->push_back(Finding{path, line_no, rule, message});
  }
};

// ---------------------------------------------------------------------------
// Rule: raw-thread
// ---------------------------------------------------------------------------

void CheckRawThread(const FileContext& ctx) {
  if (StartsWith(ctx.path, "src/core/parallel.")) return;
  static const std::regex kThread(
      R"(std::(jthread|thread|async)\b|#\s*pragma\s+omp\b|\bomp_set_num_threads\b|#\s*include\s*<omp\.h>|std::execution::par|\bpthread_(create|t)\b)");
  for (std::size_t i = 0; i < ctx.scrubbed.size(); ++i) {
    if (std::regex_search(ctx.scrubbed[i], kThread)) {
      ctx.Report(i + 1, "raw-thread",
                 "raw threading primitive; all parallelism must go through "
                 "core/parallel (ParallelFor/ParallelReduceSum)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-rng
// ---------------------------------------------------------------------------

void CheckRawRng(const FileContext& ctx) {
  if (StartsWith(ctx.path, "src/linalg/rng.")) return;
  static const std::regex kRng(
      R"(std::random_device|\bsrand\s*\(|\brand\s*\(|\btime\s*\(\s*(NULL|nullptr|0)\s*\))");
  static const std::regex kClockSeed(R"(_clock::now)");
  static const std::regex kSeedWord(R"([Ss]eed)");
  for (std::size_t i = 0; i < ctx.scrubbed.size(); ++i) {
    const std::string& line = ctx.scrubbed[i];
    if (std::regex_search(line, kRng) ||
        (std::regex_search(line, kClockSeed) &&
         std::regex_search(line, kSeedWord))) {
      ctx.Report(i + 1, "raw-rng",
                 "nondeterministic randomness source; all randomness must "
                 "come from an explicitly seeded linalg::Rng");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unordered-float
// ---------------------------------------------------------------------------

// Collects identifiers declared with type unordered_map<...> or
// unordered_set<...> anywhere in the file (local, member, or parameter).
std::unordered_set<std::string> CollectUnorderedVars(
    const std::vector<std::string>& scrubbed) {
  std::unordered_set<std::string> vars;
  for (const std::string& line : scrubbed) {
    for (const char* kind : {"unordered_map", "unordered_set"}) {
      std::size_t pos = 0;
      while ((pos = line.find(kind, pos)) != std::string::npos) {
        std::size_t p = pos + std::string(kind).size();
        // Skip the template argument list with angle-bracket matching.
        while (p < line.size() && std::isspace(static_cast<unsigned char>(
                                      line[p]))) {
          ++p;
        }
        if (p >= line.size() || line[p] != '<') {
          pos = p;
          continue;
        }
        int depth = 0;
        while (p < line.size()) {
          if (line[p] == '<') ++depth;
          if (line[p] == '>') {
            --depth;
            if (depth == 0) {
              ++p;
              break;
            }
          }
          ++p;
        }
        // Optional ref/pointer and whitespace, then the identifier.
        while (p < line.size() &&
               (std::isspace(static_cast<unsigned char>(line[p])) ||
                line[p] == '&' || line[p] == '*')) {
          ++p;
        }
        std::string name;
        while (p < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[p])) ||
                line[p] == '_')) {
          name.push_back(line[p]);
          ++p;
        }
        if (!name.empty()) vars.insert(name);
        pos = p;
      }
    }
  }
  return vars;
}

// Collects identifiers declared float or double anywhere in the file.
std::unordered_set<std::string> CollectFloatVars(
    const std::vector<std::string>& scrubbed) {
  std::unordered_set<std::string> vars;
  static const std::regex kDecl(R"((?:^|[^\w])(?:float|double)\s+(\w+))");
  for (const std::string& line : scrubbed) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      vars.insert((*it)[1].str());
    }
  }
  return vars;
}

// Returns the last line (1-based) of the brace-balanced block whose opening
// `{` is on or after `start_line` (1-based). Falls back to start_line + 30.
std::size_t BlockEnd(const std::vector<std::string>& scrubbed,
                     std::size_t start_line) {
  int depth = 0;
  bool entered = false;
  for (std::size_t i = start_line - 1; i < scrubbed.size(); ++i) {
    for (char c : scrubbed[i]) {
      if (c == '{') {
        ++depth;
        entered = true;
      } else if (c == '}') {
        --depth;
      }
    }
    if (entered && depth <= 0) return i + 1;
  }
  return std::min(scrubbed.size(), start_line + 30);
}

void CheckUnorderedFloat(const FileContext& ctx) {
  const std::unordered_set<std::string> unordered_vars =
      CollectUnorderedVars(ctx.scrubbed);
  if (unordered_vars.empty()) return;
  const std::unordered_set<std::string> float_vars =
      CollectFloatVars(ctx.scrubbed);
  // Range-for over the container, or an explicit iterator loop.
  static const std::regex kRangeFor(R"(for\s*\([^;()]*:\s*(\w+)\s*\))");
  static const std::regex kIterFor(
      R"(for\s*\(\s*auto\s+\w+\s*=\s*(\w+)\.begin\(\))");
  static const std::regex kAccum(R"((\w+)(?:\([^)]*\)|\[[^\]]*\])?\s*[+\-]=)");
  for (std::size_t i = 0; i < ctx.scrubbed.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(ctx.scrubbed[i], m, kRangeFor) &&
        !std::regex_search(ctx.scrubbed[i], m, kIterFor)) {
      continue;
    }
    if (!unordered_vars.count(m[1].str())) continue;
    const std::size_t end = BlockEnd(ctx.scrubbed, i + 1);
    for (std::size_t j = i; j < end && j < ctx.scrubbed.size(); ++j) {
      std::smatch am;
      if (std::regex_search(ctx.scrubbed[j], am, kAccum) &&
          float_vars.count(am[1].str())) {
        ctx.Report(j + 1, "unordered-float",
                   "floating-point accumulation in unordered container "
                   "iteration order; hash order is not deterministic — "
                   "iterate a sorted copy or use an ordered container");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: hand-rolled-gemm
// ---------------------------------------------------------------------------

void CheckHandRolledGemm(const FileContext& ctx) {
  if (ctx.path == "src/linalg/gemm.cc") return;
  struct ForLoop {
    int entry_depth;   // brace depth at the `for` line, before its body
    std::string var;
    bool braced;       // body wrapped in {}; pops by brace depth
    std::size_t line;  // 0-based line the `for` was seen on
  };
  static const std::regex kForVar(
      R"(for\s*\(\s*[\w:]+(?:\s*<[^<>]*>)?[\s&*]+(\w+)\s*=)");
  static const std::regex kMulAcc(R"([+]=([^;]*\*[^;]*))");
  std::vector<ForLoop> stack;
  int depth = 0;
  for (std::size_t i = 0; i < ctx.scrubbed.size(); ++i) {
    const std::string& line = ctx.scrubbed[i];
    int open = 0;
    int close = 0;
    for (char c : line) {
      if (c == '{') ++open;
      if (c == '}') ++close;
    }
    // A closing brace that drops below a loop's entry depth ends that loop.
    const int depth_after = depth + open - close;
    while (!stack.empty() && close > 0 && stack.back().braced &&
           depth_after <= stack.back().entry_depth) {
      stack.pop_back();
    }
    std::smatch m;
    if (stack.size() >= 3 && std::regex_search(line, m, kMulAcc)) {
      // Multiply-accumulate over the innermost induction variable inside a
      // triple loop is the GEMM signature: both factors index with it.
      const std::string rhs = m[1].str();
      if (CountWord(rhs, stack.back().var) >= 2) {
        ctx.Report(i + 1, "hand-rolled-gemm",
                   "triple-nested multiply-accumulate; use the canonical "
                   "kernels in linalg/gemm.h so accumulation order (and "
                   "bitwise reproducibility) is preserved");
      }
    }
    if (std::regex_search(line, m, kForVar)) {
      // Classify the loop body: `for (...) {` tracks by brace depth;
      // `for (...) stmt;` is self-contained; `for (...)` with the statement
      // on the next line(s) stays on the stack until that statement's `;`.
      const std::size_t header_start =
          static_cast<std::size_t>(m.position(0)) + line.substr(
              static_cast<std::size_t>(m.position(0))).find('(');
      int parens = 0;
      std::size_t p = header_start;
      for (; p < line.size(); ++p) {
        if (line[p] == '(') ++parens;
        if (line[p] == ')' && --parens == 0) break;
      }
      if (parens == 0 && p < line.size()) {
        const std::string rest = line.substr(p + 1);
        if (rest.find('{') != std::string::npos) {
          stack.push_back(ForLoop{depth, m[1].str(), true, i});
        } else if (rest.find(';') == std::string::npos) {
          stack.push_back(ForLoop{depth, m[1].str(), false, i});
        }
        // `for (...) stmt;` on one line: nothing outlives the line.
      }
    }
    // An unbraced loop body is a single statement: its terminating `;` at
    // the loop's own depth ends the loop (unless the `for` was pushed on
    // this very line — its header semicolons don't count).
    while (!stack.empty() && !stack.back().braced && stack.back().line != i &&
           depth_after == stack.back().entry_depth &&
           line.find(';') != std::string::npos) {
      stack.pop_back();
    }
    depth = depth_after;
  }
}

// ---------------------------------------------------------------------------
// Rule: full-logits
// ---------------------------------------------------------------------------

// Splits the top-level comma-separated arguments of the call whose opening
// '(' sits at line[open]. Returns empty when the call does not close on this
// line (the rule is line-local, like the rest of the linter).
std::vector<std::string> CallArgs(const std::string& line, std::size_t open) {
  std::vector<std::string> args;
  int depth = 0;
  std::string cur;
  for (std::size_t p = open; p < line.size(); ++p) {
    const char c = line[p];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
      if (depth > 1) cur.push_back(c);
      continue;
    }
    if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        if (!cur.empty()) args.push_back(cur);
        return args;
      }
      cur.push_back(c);
      continue;
    }
    if (c == ',' && depth == 1) {
      args.push_back(cur);
      cur.clear();
      continue;
    }
    if (depth >= 1) cur.push_back(c);
  }
  return {};  // unbalanced on this line
}

void CheckFullLogits(const FileContext& ctx) {
  if (!StartsWith(ctx.path, "src/")) return;
  // Call shapes that size a Matrix, with how many leading arguments carry no
  // column dimension: Matrix x(rows, cols) / Matrix(rows, cols) skip the row
  // argument; Workspace .Mat(slot, rows, cols) skips slot and rows too.
  struct Shape {
    const char* token;
    std::size_t skip_args;
  };
  static const Shape kShapes[] = {{"Matrix", 1},
                                  {".Resize", 1},
                                  {"->Resize", 1},
                                  {".Mat", 2},
                                  {"->Mat", 2}};
  for (std::size_t i = 0; i < ctx.scrubbed.size(); ++i) {
    const std::string& line = ctx.scrubbed[i];
    if (line.find("num_items") == std::string::npos) continue;
    for (const Shape& shape : kShapes) {
      std::size_t pos = 0;
      while ((pos = line.find(shape.token, pos)) != std::string::npos) {
        const std::size_t tok_end = pos + std::string(shape.token).size();
        const bool member_token = shape.token[0] == '.' || shape.token[0] == '-';
        const bool word_start =
            member_token || pos == 0 ||
            (!std::isalnum(static_cast<unsigned char>(line[pos - 1])) &&
             line[pos - 1] != '_');
        // Skip whitespace, then optionally one identifier (the variable name
        // in `Matrix scores(...)`), then require '('.
        std::size_t p = tok_end;
        while (p < line.size() &&
               std::isspace(static_cast<unsigned char>(line[p]))) {
          ++p;
        }
        std::size_t after_ident = p;
        while (after_ident < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[after_ident])) ||
                line[after_ident] == '_')) {
          ++after_ident;
        }
        if (member_token) after_ident = p;  // no name after .Resize/->Resize
        const bool ident_at_tok_end =
            tok_end < line.size() &&
            (std::isalnum(static_cast<unsigned char>(line[tok_end])) ||
             line[tok_end] == '_');
        if (!word_start || ident_at_tok_end ||
            after_ident >= line.size() || line[after_ident] != '(') {
          pos = tok_end;
          continue;
        }
        const std::vector<std::string> args = CallArgs(line, after_ident);
        for (std::size_t a = shape.skip_args; a < args.size(); ++a) {
          if (CountWord(args[a], "num_items") > 0) {
            ctx.Report(i + 1, "full-logits",
                       "allocates a (rows, num_items) matrix; hot paths must "
                       "stream score tiles through linalg/gemm.h "
                       "(StreamMatMulTransB) instead of materializing the "
                       "full logits — annotate materialized reference paths "
                       "with whitenrec-lint: allow(full-logits)");
            break;
          }
        }
        pos = tok_end;
      }
    }
  }

  // Serving and retrieval hot paths: the micro-batch contract is O(K) state
  // per request, and IVF candidate gathering is O(clusters + candidates), so
  // even a 1-D per-catalog buffer — a vector sized by num_items — defeats
  // them. Elsewhere such vectors are legitimate (index maps, exclusion
  // bitmaps in offline eval), so the tighter net applies to serve/ and
  // retrieval/ only; the retrieval index BUILDER legitimately labels every
  // item once and carries a scoped allow.
  if (StartsWith(ctx.path, "src/serve/") ||
      StartsWith(ctx.path, "src/retrieval/")) {
    static const std::regex kVecCatalog(
        R"(vector\s*<[^;=]*>[^(;=]*\(\s*[^)]*\bnum_items\b|\.(resize|assign|reserve)\s*\(\s*[^)]*\bnum_items\b)");
    for (std::size_t i = 0; i < ctx.scrubbed.size(); ++i) {
      if (std::regex_search(ctx.scrubbed[i], kVecCatalog)) {
        ctx.Report(i + 1, "full-logits",
                   "per-catalog buffer in the serving/retrieval path; these "
                   "paths must keep O(K) state per request and stream score "
                   "tiles (StreamMatMulTransB + TopKSelector) or probe "
                   "cluster lists (retrieval/ivf_index.h)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: stdout-in-library
// ---------------------------------------------------------------------------

void CheckStdoutInLibrary(const FileContext& ctx) {
  if (!StartsWith(ctx.path, "src/")) return;
  static const std::regex kStdout(
      R"(std::cout\b|\bprintf\s*\(|\bputs\s*\(|\bputchar\s*\(|fprintf\s*\(\s*stdout\b|fputs\s*\([^;]*,\s*stdout\s*\))");
  for (std::size_t i = 0; i < ctx.scrubbed.size(); ++i) {
    if (std::regex_search(ctx.scrubbed[i], kStdout)) {
      ctx.Report(i + 1, "stdout-in-library",
                 "library code must not write to stdout; return data or log "
                 "to stderr so tool output stays machine-parseable");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: raw-io
// ---------------------------------------------------------------------------

void CheckRawIo(const FileContext& ctx) {
  if (!StartsWith(ctx.path, "src/")) return;
  // core/faultfs.cc is the one sanctioned write path (atomic replace +
  // fault injection live there).
  if (ctx.path == "src/core/faultfs.cc") return;
  static const std::regex kRawWrite(
      R"(std::ofstream\b|std::fstream\b|\bfopen\s*\(|\bO_WRONLY\b|\bO_RDWR\b|\bO_CREAT\b)");
  for (std::size_t i = 0; i < ctx.scrubbed.size(); ++i) {
    if (std::regex_search(ctx.scrubbed[i], kRawWrite)) {
      ctx.Report(i + 1, "raw-io",
                 "raw file write primitive; persistent state must go through "
                 "core/faultfs (AtomicWriteFile/ReadFileToString) so atomic "
                 "replace, typed errors, and fault injection cover it");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: include-guard
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string p = path;
  if (StartsWith(p, "src/")) p = p.substr(4);
  std::string guard = "WHITENREC_";
  for (char c : p) {
    if (c == '/' || c == '.' || c == '-') {
      guard.push_back('_');
    } else {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

void CheckIncludeGuard(const FileContext& ctx) {
  if (!EndsWith(ctx.path, ".h") && !EndsWith(ctx.path, ".hpp")) return;
  const std::string expected = ExpectedGuard(ctx.path);
  static const std::regex kIfndef(R"(^\s*#\s*ifndef\s+(\w+))");
  static const std::regex kDefine(R"(^\s*#\s*define\s+(\w+))");
  static const std::regex kPragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
  std::string ifndef_name;
  std::size_t ifndef_line = 0;
  for (std::size_t i = 0; i < ctx.scrubbed.size(); ++i) {
    std::smatch m;
    if (std::regex_search(ctx.scrubbed[i], m, kPragmaOnce)) {
      ctx.Report(i + 1, "include-guard",
                 "#pragma once is not used here; use the " + expected +
                     " guard convention");
      return;
    }
    if (ifndef_name.empty() && std::regex_search(ctx.scrubbed[i], m, kIfndef)) {
      ifndef_name = m[1].str();
      ifndef_line = i + 1;
      continue;
    }
    if (!ifndef_name.empty()) {
      if (std::regex_search(ctx.scrubbed[i], m, kDefine)) {
        if (ifndef_name != expected || m[1].str() != expected) {
          ctx.Report(ifndef_line, "include-guard",
                     "include guard is " + ifndef_name + ", expected " +
                         expected);
        }
        return;
      }
      if (!ctx.scrubbed[i].empty() &&
          ctx.scrubbed[i].find_first_not_of(" \t") != std::string::npos) {
        break;  // something other than the paired #define follows
      }
    }
  }
  ctx.Report(ifndef_line ? ifndef_line : 1, "include-guard",
             "missing include guard; expected " + expected);
}

}  // namespace

std::string ScrubSource(const std::string& contents) {
  // One lexer for both tools: the analyzer's token scanner decides where
  // every comment and literal begins and ends (see lint.h).
  return analyze::ScrubSource(contents);
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& contents) {
  std::vector<Finding> findings;
  FileContext ctx;
  ctx.path = path;
  ctx.raw = SplitLines(contents);
  ctx.scrubbed = SplitLines(ScrubSource(contents));
  ctx.findings = &findings;
  CheckRawThread(ctx);
  CheckRawRng(ctx);
  CheckUnorderedFloat(ctx);
  CheckHandRolledGemm(ctx);
  CheckFullLogits(ctx);
  CheckStdoutInLibrary(ctx);
  CheckRawIo(ctx);
  CheckIncludeGuard(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line < b.line;
            });
  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const char* dir : {"src", "tests", "bench", "examples"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp") {
        continue;
      }
      files.push_back(
          fs::relative(entry.path(), fs::path(root)).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> findings;
  for (const std::string& rel : files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    std::vector<Finding> file_findings = LintFile(rel, ss.str());
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

}  // namespace lint
}  // namespace whitenrec
