#ifndef WHITENREC_TOOLS_LINT_LINT_H_
#define WHITENREC_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

// Determinism / reproducibility linter for the whitenrec tree. The repo's
// bitwise-reproducibility guarantee (DESIGN.md §6) rests on invariants that
// the compiler cannot enforce: all parallelism goes through core/parallel,
// all randomness through linalg/rng, no float accumulation in hash-order,
// and all matmuls through the canonical-order kernels in linalg/gemm. This
// linter turns those conventions into hard errors so they survive future
// PRs. Rules operate on comment- and string-scrubbed source text, so code
// inside literals or comments never trips them.
//
// A finding on line N can be suppressed by putting
//   // whitenrec-lint: allow(<rule>)
// on line N or on line N-1.

namespace whitenrec {
namespace lint {

struct Finding {
  std::string file;  // repo-relative path with '/' separators
  std::size_t line;  // 1-based
  std::string rule;  // e.g. "raw-thread"
  std::string message;
};

// Rule names (used in findings and allow() suppressions):
//   raw-thread        std::thread/std::async/std::jthread/OpenMP outside
//                     src/core/parallel.*
//   raw-rng           rand()/srand()/std::random_device/time-based seeding
//                     outside src/linalg/rng.{h,cc}
//   unordered-float   range-for over an unordered_{map,set} accumulating
//                     into a float/double (hash order is not deterministic)
//   hand-rolled-gemm  triple-nested loop with a multiply-accumulate over the
//                     innermost index outside src/linalg/gemm.cc
//   stdout-in-library printf/std::cout/puts to stdout from src/ (library
//                     output goes through return values or stderr)
//   raw-io            std::ofstream/std::fstream/fopen/POSIX write-mode open
//                     in src/ outside src/core/faultfs.cc. Persistent state
//                     must go through core/faultfs (AtomicWriteFile /
//                     ReadFileToString) so atomic replace, checked errors,
//                     and fault injection cover every write path.
//   include-guard     header guard not WHITENREC_<PATH>_H_ (src/ prefix
//                     dropped; tests/ bench/ examples/ kept)
//   full-logits       Matrix allocation in src/ with num_items as a column
//                     (non-leading) dimension — a (rows, num_items) score or
//                     logits buffer. The streaming layer (linalg/gemm.h,
//                     WHITENREC_SCORING=fused) exists so hot paths never
//                     materialize these; materialized reference paths carry
//                     a whitenrec-lint: allow(full-logits) annotation.
//                     Checked call shapes: `Matrix x(r, ..num_items..)`,
//                     `Matrix(r, ..num_items..)`, `.Resize(r, ..)`,
//                     `.Mat(slot, r, ..)`. A leading num_items dimension
//                     (the (num_items, d) item table) is fine.

// Lints a single file. `path` must be the repo-relative path; `contents`
// the full file text. Findings come back in line order.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& contents);

// Walks src/ tests/ bench/ examples/ under `root` (skipping anything else,
// e.g. build/), linting every .h/.hpp/.cc/.cpp file. Findings are sorted by
// path then line.
std::vector<Finding> LintTree(const std::string& root);

// Replaces string literals, char literals, and comments with spaces while
// preserving line structure. Exposed for tests. Delegates to the shared
// token scanner in tools/analyze/tokenize.h, so the linter and the cross-TU
// analyzer agree byte-for-byte on literal boundaries — including the
// prefixed raw strings (u8R"(...)" etc.) the old per-character state
// machine mis-lexed as ordinary strings.
std::string ScrubSource(const std::string& contents);

}  // namespace lint
}  // namespace whitenrec

#endif  // WHITENREC_TOOLS_LINT_LINT_H_
