// Standalone determinism linter. Walks src/ tests/ bench/ examples/ under
// --root and exits nonzero if any repo invariant is violated (see lint.h for
// the rule list). Wired into the build as the `check-lint` target and into
// ctest as a tier-1 test, so a stray std::thread or std::random_device fails
// CI the same way a broken unit test does.
//
// Usage: whitenrec_lint --root <repo-root>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr, "usage: %s --root <repo-root>\n", argv[0]);
      return 2;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  const std::vector<whitenrec::lint::Finding> findings =
      whitenrec::lint::LintTree(root);
  for (const whitenrec::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "whitenrec_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::fprintf(stderr, "whitenrec_lint: clean\n");
  return 0;
}
